// Tests for the modular exponentiator (paper §4.5): functional equivalence
// with plain modular exponentiation, the Eq. 10 cycle bounds, and agreement
// between the cycle-accurate and fast engines.
#include <gtest/gtest.h>

#include "bignum/biguint.hpp"
#include "bignum/prime.hpp"
#include "bignum/random.hpp"
#include "core/exponentiator.hpp"
#include "core/schedule.hpp"
#include "testutil.hpp"

namespace mont::core {
namespace {

using bignum::BigUInt;
using bignum::RandomBigUInt;

TEST(Exponentiator, MatchesReferenceFastEngine) {
  auto rng = test::TestRng();
  for (const std::size_t bits : {8u, 16u, 64u, 160u, 256u}) {
    const BigUInt n = rng.OddExactBits(bits);
    Exponentiator exp(n, "bit-serial");
    for (int trial = 0; trial < 4; ++trial) {
      const BigUInt base = rng.Below(n);
      const BigUInt e = rng.ExactBits(bits);
      EXPECT_EQ(exp.ModExp(base, e), BigUInt::ModExp(base, e, n))
          << "bits=" << bits;
    }
  }
}

TEST(Exponentiator, MatchesReferenceCycleAccurateEngine) {
  auto rng = test::TestRng();
  for (const std::size_t bits : {8u, 16u, 32u}) {
    const BigUInt n = rng.OddExactBits(bits);
    Exponentiator exp(n, "mmmc");
    for (int trial = 0; trial < 2; ++trial) {
      const BigUInt base = rng.Below(n);
      const BigUInt e = rng.ExactBits(bits);
      EXPECT_EQ(exp.ModExp(base, e), BigUInt::ModExp(base, e, n))
          << "bits=" << bits;
    }
  }
}

TEST(Exponentiator, EnginesAgreeOnStatsAndValues) {
  auto rng = test::TestRng();
  const BigUInt n = rng.OddExactBits(24);
  Exponentiator fast(n, "bit-serial");
  Exponentiator accurate(n, "mmmc");
  for (int trial = 0; trial < 3; ++trial) {
    const BigUInt base = rng.Below(n);
    const BigUInt e = rng.ExactBits(24);
    EngineStats fast_stats, accurate_stats;
    const BigUInt fast_result = fast.ModExp(base, e, &fast_stats);
    const BigUInt accurate_result = accurate.ModExp(base, e, &accurate_stats);
    EXPECT_EQ(fast_result, accurate_result);
    EXPECT_EQ(fast_stats.squarings, accurate_stats.squarings);
    EXPECT_EQ(fast_stats.multiplications, accurate_stats.multiplications);
    EXPECT_EQ(fast_stats.mmm_invocations, accurate_stats.mmm_invocations);
    // The fast engine charges 3l+4 per MMM; the cycle-accurate engine
    // measures it.  They must agree exactly.
    EXPECT_EQ(fast_stats.engine_cycles, accurate_stats.engine_cycles);
  }
}

TEST(Exponentiator, OperationCountsMatchExponentShape) {
  auto rng = test::TestRng();
  const BigUInt n = rng.OddExactBits(32);
  Exponentiator exp(n);
  // All-ones exponent of t bits: t-1 squarings, t-1 multiplications.
  const BigUInt all_ones = BigUInt::PowerOfTwo(16) - BigUInt{1};
  EngineStats stats;
  exp.ModExp(BigUInt{3}, all_ones, &stats);
  EXPECT_EQ(stats.squarings, 15u);
  EXPECT_EQ(stats.multiplications, 15u);
  EXPECT_EQ(stats.mmm_invocations, 15u + 15u + 2u) << "plus domain entry/exit";

  // One-hot exponent 2^16: 16 squarings, 0 multiplications.
  stats = {};
  exp.ModExp(BigUInt{3}, BigUInt::PowerOfTwo(16), &stats);
  EXPECT_EQ(stats.squarings, 16u);
  EXPECT_EQ(stats.multiplications, 0u);
}

// Eq. 10: 3l^2+10l+12 <= T_mod-exp <= 6l^2+14l+12 for l-bit exponents,
// under the paper's cycle accounting.
class Eq10Bounds : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Eq10Bounds, PaperModelCyclesWithinBounds) {
  const std::size_t l = GetParam();
  auto rng = test::TestRng();
  const BigUInt n = rng.OddExactBits(l);
  Exponentiator exp(n);
  for (int trial = 0; trial < 4; ++trial) {
    // Exponent with exactly l bits (top bit set), random lower bits.
    const BigUInt e = rng.ExactBits(l);
    EngineStats stats;
    exp.ModExp(rng.Below(n), e, &stats);
    EXPECT_LE(stats.paper_model_cycles, ExponentiationUpperBound(l));
    // The published lower bound assumes l squarings; the actual algorithm
    // performs l-1, so allow one MMM of slack below the closed form.
    EXPECT_GE(stats.paper_model_cycles + MultiplyCycles(l),
              ExponentiationLowerBound(l));
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, Eq10Bounds,
                         ::testing::Values(16, 32, 64, 128, 256));

// Fermat/Euler sanity through the full hardware-modelled flow.
TEST(Exponentiator, FermatLittleTheorem) {
  const BigUInt p{65537};  // prime
  Exponentiator exp(p);
  for (const std::uint64_t a : {2ull, 3ull, 12345ull}) {
    EXPECT_TRUE(exp.ModExp(BigUInt{a}, p - BigUInt{1}).IsOne());
  }
}

TEST(Exponentiator, EdgeExponents) {
  auto rng = test::TestRng();
  const BigUInt n = rng.OddExactBits(20);
  Exponentiator exp(n);
  const BigUInt base = rng.Below(n);
  EXPECT_TRUE(exp.ModExp(base, BigUInt{0}).IsOne());
  EXPECT_EQ(exp.ModExp(base, BigUInt{1}), base);
  EXPECT_EQ(exp.ModExp(base, BigUInt{2}), (base * base) % n);
  EXPECT_TRUE(exp.ModExp(BigUInt{0}, BigUInt{5}).IsZero());
}

// RSA-style round trip: (m^e)^d = m for e*d = 1 mod phi.
TEST(Exponentiator, RsaRoundTripSmall) {
  // p = 61, q = 53 -> n = 3233, phi = 3120, e = 17, d = 2753.
  const BigUInt n{3233}, e{17}, d{2753};
  Exponentiator exp(n, "mmmc");
  for (const std::uint64_t m : {42ull, 123ull, 3000ull}) {
    const BigUInt c = exp.ModExp(BigUInt{m}, e);
    EXPECT_EQ(exp.ModExp(c, d).ToUint64(), m);
  }
}

// Exponent randomization (the sca lab's schedule countermeasure): every
// call runs a different square/multiply sequence — visibly more MMMs —
// while the value is unchanged because the added multiple of the group
// order annihilates.
TEST(Exponentiator, ExponentBlindingSameValueRandomizedSchedule) {
  auto rng = test::TestRng();
  const BigUInt p = bignum::GeneratePrime(48, rng);  // group order p-1
  Exponentiator plain(p);
  Exponentiator blinded(p);
  blinded.EnableExponentBlinding(
      {.group_order = p - BigUInt{1}, .random_bits = 12, .seed = 99});
  EXPECT_TRUE(blinded.ExponentBlindingEnabled());
  for (int trial = 0; trial < 5; ++trial) {
    const BigUInt base = rng.Below(p);
    const BigUInt e = rng.ExactBits(32);
    EngineStats plain_stats, blinded_stats;
    const BigUInt expected = plain.ModExp(base, e, &plain_stats);
    EXPECT_EQ(blinded.ModExp(base, e, &blinded_stats), expected);
    // k's top bit is forced, so the blinded exponent is strictly longer.
    EXPECT_GT(blinded_stats.mmm_invocations, plain_stats.mmm_invocations);
  }
  blinded.DisableExponentBlinding();
  EXPECT_FALSE(blinded.ExponentBlindingEnabled());
  const BigUInt base = rng.Below(p);
  EngineStats off_stats;
  blinded.ModExp(base, BigUInt{3}, &off_stats);
  EXPECT_EQ(off_stats.squarings, 1u);
}

TEST(Exponentiator, ExponentBlindingRejectsBadConfig) {
  auto rng = test::TestRng();
  Exponentiator exp(rng.OddExactBits(16));
  EXPECT_THROW(exp.EnableExponentBlinding({.group_order = BigUInt{0}}),
               std::invalid_argument);
  EXPECT_THROW(exp.EnableExponentBlinding(
                   {.group_order = BigUInt{6}, .random_bits = 0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace mont::core
