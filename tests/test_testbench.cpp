// Tests for the self-checking Verilog testbench generator.
#include <gtest/gtest.h>

#include "core/netlist_gen.hpp"
#include "rtl/components.hpp"
#include "rtl/testbench.hpp"
#include "testutil_netlist.hpp"

namespace mont::rtl {
namespace {

TEST(Testbench, RecordsSimulatorBehaviour) {
  Netlist nl;
  const NetId a = nl.AddInput("a");
  const NetId b = nl.AddInput("b");
  const NetId q = nl.Dff(nl.And(a, b));
  nl.MarkOutput(q, "q");
  const auto vectors = RecordVectors(
      nl, {{{a, true}, {b, true}}, {{a, false}, {b, true}}});
  ASSERT_EQ(vectors.size(), 2u);
  // After the first edge q latches 1, after the second it latches 0.
  EXPECT_EQ(vectors[0].expected.size(), 1u);
  EXPECT_TRUE(vectors[0].expected[0].second);
  EXPECT_FALSE(vectors[1].expected[0].second);
}

TEST(Testbench, EmitsWellFormedVerilog) {
  Netlist nl;
  const NetId a = nl.AddInput("a");
  const NetId q = nl.Dff(a);
  nl.MarkOutput(q, "q");
  const auto vectors = RecordVectors(nl, {{{a, true}}, {{a, false}}});
  const std::string tb = ExportTestbench(nl, "dff1", vectors);
  EXPECT_NE(tb.find("module dff1_tb;"), std::string::npos);
  EXPECT_NE(tb.find("dff1 dut ("), std::string::npos);
  EXPECT_NE(tb.find("always #5 clk = ~clk;"), std::string::npos);
  EXPECT_NE(tb.find("@(posedge clk)"), std::string::npos);
  EXPECT_NE(tb.find("PASS: all 2 vectors"), std::string::npos);
  EXPECT_NE(tb.find("$finish;"), std::string::npos);
}

TEST(Testbench, MmmcTestbenchCoversAWholeMultiplication) {
  using mont::bignum::BigUInt;
  const std::size_t l = 4;
  const core::MmmcNetlist gen = core::BuildMmmcNetlist(l);
  // Stimulus: start pulse with operands x=5, y=9, N=13, then idle cycles
  // until well past DONE.
  std::vector<std::vector<std::pair<NetId, bool>>> stimulus;
  stimulus.push_back(
      test::MmmcStartStimulus(gen, BigUInt{5}, BigUInt{9}, BigUInt{13}));
  for (std::size_t k = 0; k < 3 * l + 5; ++k) {
    stimulus.push_back({{gen.start, false}});
  }
  const auto vectors = RecordVectors(*gen.netlist, stimulus);
  const std::string tb = ExportTestbench(*gen.netlist, "mmmc4", vectors);
  // DONE must be expected high on exactly one vector.
  std::size_t done_highs = 0;
  for (const auto& vec : vectors) {
    for (const auto& [net, value] : vec.expected) {
      if (net == gen.done && value) ++done_highs;
    }
  }
  EXPECT_EQ(done_highs, 1u);
  EXPECT_NE(tb.find("mmmc4 dut"), std::string::npos);
}

// The batch recorder must reproduce, lane for lane, exactly what the
// scalar recorder produces for each sequence run on its own — here with 64
// MMMC multiplications (64 operand pairs) recorded in a single simulation.
TEST(Testbench, BatchRecordingMatchesScalarPerSequence) {
  using mont::bignum::BigUInt;
  const std::size_t l = 3;
  const core::MmmcNetlist gen = core::BuildMmmcNetlist(l);
  auto rng = test::TestRng();
  const BigUInt n = rng.OddExactBits(l);
  const BigUInt two_n = n << 1;

  std::vector<StimulusSequence> sequences;
  for (std::size_t lane = 0; lane < 64; ++lane) {
    StimulusSequence seq;
    seq.push_back(
        test::MmmcStartStimulus(gen, rng.Below(two_n), rng.Below(two_n), n));
    for (std::size_t k = 0; k < 3 * l + 5; ++k) {
      seq.push_back({{gen.start, false}});
    }
    sequences.push_back(std::move(seq));
  }

  const auto batch = RecordVectorsBatch(*gen.netlist, sequences);
  ASSERT_EQ(batch.size(), sequences.size());
  for (std::size_t lane = 0; lane < sequences.size(); ++lane) {
    const auto scalar = RecordVectors(*gen.netlist, sequences[lane]);
    ASSERT_EQ(batch[lane].size(), scalar.size()) << "lane " << lane;
    for (std::size_t v = 0; v < scalar.size(); ++v) {
      EXPECT_EQ(batch[lane][v].inputs, scalar[v].inputs);
      EXPECT_EQ(batch[lane][v].expected, scalar[v].expected)
          << "lane " << lane << " vector " << v;
    }
  }
}

TEST(Testbench, BatchRecordingRejectsMoreThan64Sequences) {
  Netlist nl;
  const NetId a = nl.AddInput("a");
  nl.MarkOutput(nl.Buf(a), "q");
  const std::vector<StimulusSequence> sequences(65, {{{a, true}}});
  EXPECT_THROW(RecordVectorsBatch(nl, sequences), std::invalid_argument);
}

}  // namespace
}  // namespace mont::rtl
