// Tests for the software Montgomery references (the golden models that the
// cycle-accurate hardware simulations are validated against).
#include <gtest/gtest.h>

#include "bignum/biguint.hpp"
#include "bignum/montgomery.hpp"
#include "bignum/prime.hpp"
#include "bignum/random.hpp"
#include "testutil.hpp"

namespace mont::bignum {
namespace {

// A small odd modulus for exhaustive checks.
constexpr std::uint64_t kSmallN = 239;

TEST(BitSerialMontgomery, RejectsBadModulus) {
  EXPECT_THROW(BitSerialMontgomery(BigUInt{4}), std::invalid_argument);
  EXPECT_THROW(BitSerialMontgomery(BigUInt{1}), std::invalid_argument);
  EXPECT_THROW(BitSerialMontgomery(BigUInt{0}), std::invalid_argument);
}

TEST(BitSerialMontgomery, ParametersMatchPaper) {
  const BigUInt n = BigUInt::FromDec("1000003");  // 20-bit prime
  BitSerialMontgomery ctx(n);
  EXPECT_EQ(ctx.l(), 20u);
  EXPECT_EQ(ctx.R(), BigUInt::PowerOfTwo(22));
  // Walter's bound: 4N < R.
  EXPECT_LT(n << 2, ctx.R());
}

// Exhaustive check of Algorithm 1 against the definition x*y*R1^-1 mod N.
TEST(BitSerialMontgomery, Alg1MatchesDefinitionExhaustive) {
  const BigUInt n{kSmallN};
  BitSerialMontgomery ctx(n);
  for (std::uint64_t x = 0; x < kSmallN; x += 7) {
    for (std::uint64_t y = 0; y < kSmallN; y += 5) {
      EXPECT_EQ(ctx.MultiplyAlg1(BigUInt{x}, BigUInt{y}),
                test::MontOracle(BigUInt{x}, BigUInt{y}, n, ctx.l()))
          << "x=" << x << " y=" << y;
    }
  }
}

// Exhaustive check of Algorithm 2: result congruent to x*y*R^-1 mod N and
// bounded by 2N (paper's key claim enabling subtraction-free chaining).
TEST(BitSerialMontgomery, Alg2CongruenceAndBoundExhaustive) {
  const BigUInt n{kSmallN};
  BitSerialMontgomery ctx(n);
  for (std::uint64_t x = 0; x < 2 * kSmallN; x += 11) {
    for (std::uint64_t y = 0; y < 2 * kSmallN; y += 13) {
      EXPECT_TRUE(test::IsChainableMontProduct(
          ctx.MultiplyAlg2(BigUInt{x}, BigUInt{y}), BigUInt{x}, BigUInt{y}, n,
          ctx.R()));
    }
  }
}

TEST(BitSerialMontgomery, Alg2RejectsOutOfRange) {
  const BigUInt n{kSmallN};
  BitSerialMontgomery ctx(n);
  EXPECT_THROW(ctx.MultiplyAlg2(BigUInt{2 * kSmallN}, BigUInt{1}),
               std::invalid_argument);
  EXPECT_THROW(ctx.MultiplyAlg2(BigUInt{1}, BigUInt{2 * kSmallN}),
               std::invalid_argument);
}

// Property: Algorithm 2 keeps outputs < 2N across random operand sizes, so
// results can always be fed back as inputs (the paper's chaining property).
TEST(BitSerialMontgomeryProperty, Alg2OutputsChainable) {
  auto rng = test::TestRng();
  for (const std::size_t bits : test::kSoftwareBitLengths) {
    const BigUInt n = rng.OddExactBits(bits);
    BitSerialMontgomery ctx(n);
    const BigUInt two_n = n << 1;
    BigUInt a = rng.Below(two_n);
    BigUInt b = rng.Below(two_n);
    for (int step = 0; step < 16; ++step) {
      a = ctx.MultiplyAlg2(a, b);  // feed the output straight back in
      ASSERT_LT(a, two_n) << "bits=" << bits << " step=" << step;
    }
  }
}

// Property: ToMont/FromMont round-trips and matches x*R mod N semantics.
TEST(BitSerialMontgomeryProperty, DomainRoundTrip) {
  auto rng = test::TestRng();
  for (int trial = 0; trial < 30; ++trial) {
    const BigUInt n = rng.OddExactBits(96);
    BitSerialMontgomery ctx(n);
    const BigUInt x = rng.Below(n);
    const BigUInt x_mont = ctx.ToMont(x);
    EXPECT_EQ(x_mont % n, (x * ctx.R()) % n);
    EXPECT_EQ(ctx.FromMont(x_mont), x);
  }
}

// Property: bit-serial ModExp agrees with the plain BigUInt::ModExp.
TEST(BitSerialMontgomeryProperty, ModExpMatchesReference) {
  auto rng = test::TestRng();
  for (const std::size_t bits : {8u, 32u, 128u}) {
    const BigUInt n = rng.OddExactBits(bits);
    BitSerialMontgomery ctx(n);
    for (int trial = 0; trial < 8; ++trial) {
      const BigUInt base = rng.Below(n);
      const BigUInt exp = rng.ExactBits(bits);
      EXPECT_EQ(ctx.ModExp(base, exp), BigUInt::ModExp(base, exp, n))
          << "bits=" << bits;
    }
  }
}

TEST(BitSerialMontgomery, ModExpEdgeCases) {
  const BigUInt n{kSmallN};
  BitSerialMontgomery ctx(n);
  EXPECT_EQ(ctx.ModExp(BigUInt{5}, BigUInt{0}).ToUint64(), 1u);
  EXPECT_EQ(ctx.ModExp(BigUInt{5}, BigUInt{1}).ToUint64(), 5u);
  EXPECT_EQ(ctx.ModExp(BigUInt{0}, BigUInt{5}).ToUint64(), 0u);
  // Fermat's little theorem on the prime 239.
  EXPECT_EQ(ctx.ModExp(BigUInt{2}, BigUInt{kSmallN - 1}).ToUint64(), 1u);
}

// All three word-level variants must agree with the mathematical definition.
class WordMontgomeryVariants
    : public ::testing::TestWithParam<WordMontgomery::Variant> {};

TEST_P(WordMontgomeryVariants, MatchesDefinitionRandom) {
  auto rng = test::TestRng();
  for (const std::size_t bits : test::kSoftwareBitLengths) {
    const BigUInt n = rng.OddExactBits(bits);
    WordMontgomery ctx(n);
    const BigUInt r = BigUInt::PowerOfTwo(32 * ctx.LimbCount());
    for (int trial = 0; trial < 10; ++trial) {
      const BigUInt x = rng.Below(n);
      const BigUInt y = rng.Below(n);
      EXPECT_TRUE(test::IsReducedMontProduct(ctx.Multiply(x, y, GetParam()),
                                             x, y, n, r))
          << "bits=" << bits;
    }
  }
}

TEST_P(WordMontgomeryVariants, ModExpMatchesReference) {
  auto rng = test::TestRng();
  const BigUInt n = rng.OddExactBits(256);
  WordMontgomery ctx(n);
  for (int trial = 0; trial < 5; ++trial) {
    const BigUInt base = rng.Below(n);
    const BigUInt exp = rng.ExactBits(64);
    EXPECT_EQ(ctx.ModExp(base, exp, GetParam()),
              BigUInt::ModExp(base, exp, n));
  }
}

INSTANTIATE_TEST_SUITE_P(AllVariants, WordMontgomeryVariants,
                         ::testing::Values(WordMontgomery::Variant::kCios,
                                           WordMontgomery::Variant::kSos,
                                           WordMontgomery::Variant::kFips),
                         [](const auto& info) {
                           switch (info.param) {
                             case WordMontgomery::Variant::kCios: return "CIOS";
                             case WordMontgomery::Variant::kSos: return "SOS";
                             case WordMontgomery::Variant::kFips: return "FIPS";
                           }
                           return "unknown";
                         });

TEST(WordMontgomery, VariantsAgreeWithEachOther) {
  auto rng = test::TestRng();
  const BigUInt n = rng.OddExactBits(1024);
  WordMontgomery ctx(n);
  for (int trial = 0; trial < 10; ++trial) {
    const BigUInt x = rng.Below(n);
    const BigUInt y = rng.Below(n);
    const BigUInt cios = ctx.Multiply(x, y, WordMontgomery::Variant::kCios);
    const BigUInt sos = ctx.Multiply(x, y, WordMontgomery::Variant::kSos);
    const BigUInt fips = ctx.Multiply(x, y, WordMontgomery::Variant::kFips);
    EXPECT_EQ(cios, sos);
    EXPECT_EQ(cios, fips);
  }
}

TEST(WordMontgomery, BitSerialAndWordLevelAgreeOnModExp) {
  auto rng = test::TestRng();
  const BigUInt n = rng.OddExactBits(160);
  BitSerialMontgomery bit_ctx(n);
  WordMontgomery word_ctx(n);
  for (int trial = 0; trial < 5; ++trial) {
    const BigUInt base = rng.Below(n);
    const BigUInt exp = rng.ExactBits(48);
    EXPECT_EQ(bit_ctx.ModExp(base, exp), word_ctx.ModExp(base, exp));
  }
}

TEST(Primality, SmallKnownValues) {
  auto rng = test::TestRng();
  EXPECT_FALSE(IsProbablePrime(BigUInt{0}, rng));
  EXPECT_FALSE(IsProbablePrime(BigUInt{1}, rng));
  EXPECT_TRUE(IsProbablePrime(BigUInt{2}, rng));
  EXPECT_TRUE(IsProbablePrime(BigUInt{3}, rng));
  EXPECT_FALSE(IsProbablePrime(BigUInt{4}, rng));
  EXPECT_TRUE(IsProbablePrime(BigUInt{997}, rng));
  EXPECT_FALSE(IsProbablePrime(BigUInt{1001}, rng));  // 7 * 11 * 13
  EXPECT_TRUE(IsProbablePrime(BigUInt{1000003}, rng));
  EXPECT_FALSE(IsProbablePrime(BigUInt{1000001}, rng));  // 101 * 9901
}

TEST(Primality, CarmichaelNumbersRejected) {
  auto rng = test::TestRng();
  // Carmichael numbers fool Fermat tests but not Miller-Rabin.
  for (const std::uint64_t c : {561ull, 1105ull, 1729ull, 41041ull, 825265ull}) {
    EXPECT_FALSE(IsProbablePrime(BigUInt{c}, rng)) << c;
  }
}

TEST(Primality, KnownLargePrime) {
  auto rng = test::TestRng();
  // 2^127 - 1 is a Mersenne prime; 2^128 - 1 is composite.
  const BigUInt m127 = BigUInt::PowerOfTwo(127) - BigUInt{1};
  const BigUInt m128 = BigUInt::PowerOfTwo(128) - BigUInt{1};
  EXPECT_TRUE(IsProbablePrime(m127, rng));
  EXPECT_FALSE(IsProbablePrime(m128, rng));
}

TEST(Primality, GeneratePrimeHasRequestedShape) {
  auto rng = test::TestRng();
  for (const std::size_t bits : {32u, 64u, 128u}) {
    const BigUInt p = GeneratePrime(bits, rng, 16);
    EXPECT_EQ(p.BitLength(), bits);
    EXPECT_TRUE(p.Bit(bits - 2)) << "second-highest bit must be forced";
    EXPECT_TRUE(p.IsOdd());
    EXPECT_TRUE(IsProbablePrime(p, rng, 16));
  }
}

}  // namespace
}  // namespace mont::bignum
