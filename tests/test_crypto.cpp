// Tests for the application layer: RSA key generation / round trips / CRT,
// and ECC point multiplication (the paper's future-work direction) with
// exhaustive checks on a tiny curve plus known-structure checks on P-192.
#include <gtest/gtest.h>

#include <vector>

#include "bignum/prime.hpp"
#include "bignum/random.hpp"
#include "crypto/ecc.hpp"
#include "crypto/rsa.hpp"
#include "testutil.hpp"

namespace mont::crypto {
namespace {

using bignum::BigUInt;
using bignum::RandomBigUInt;

// ---------------------------------------------------------------------------
// RSA
// ---------------------------------------------------------------------------

TEST(Rsa, GeneratedKeyShape) {
  auto rng = test::TestRng();
  const RsaKeyPair key = GenerateRsaKey(128, rng);
  EXPECT_EQ(key.n.BitLength(), 128u);
  EXPECT_EQ(key.p * key.q, key.n);
  EXPECT_TRUE(IsProbablePrime(key.p, rng, 8));
  EXPECT_TRUE(IsProbablePrime(key.q, rng, 8));
  // e*d = 1 mod lambda(n)
  const BigUInt p1 = key.p - BigUInt{1};
  const BigUInt q1 = key.q - BigUInt{1};
  const BigUInt lambda = (p1 * q1) / BigUInt::Gcd(p1, q1);
  EXPECT_TRUE(((key.e * key.d) % lambda).IsOne());
}

TEST(Rsa, RejectsBadParameters) {
  auto rng = test::TestRng();
  EXPECT_THROW(GenerateRsaKey(31, rng), std::invalid_argument);
  EXPECT_THROW(GenerateRsaKey(16, rng), std::invalid_argument);
}

TEST(Rsa, EncryptDecryptRoundTrip) {
  auto rng = test::TestRng();
  const RsaKeyPair key = GenerateRsaKey(128, rng);
  for (int trial = 0; trial < 5; ++trial) {
    const BigUInt m = rng.Below(key.n);
    const BigUInt c = RsaPublic(key, m);
    EXPECT_EQ(RsaPrivate(key, c), m);
  }
}

TEST(Rsa, CrtMatchesPlainDecryption) {
  auto rng = test::TestRng();
  const RsaKeyPair key = GenerateRsaKey(192, rng);
  for (int trial = 0; trial < 5; ++trial) {
    const BigUInt m = rng.Below(key.n);
    const BigUInt c = RsaPublic(key, m);
    EXPECT_EQ(RsaPrivateCrt(key, c), RsaPrivate(key, c));
  }
}

TEST(Rsa, HardwareModelAgreesAndReportsCycles) {
  auto rng = test::TestRng();
  const RsaKeyPair key = GenerateRsaKey(96, rng);
  const BigUInt m = rng.Below(key.n);
  const BigUInt c = RsaPublic(key, m);
  core::EngineStats stats;
  EXPECT_EQ(RsaPrivateOnHardwareModel(key, c, &stats), m);
  EXPECT_GT(stats.engine_cycles, 0u);
  EXPECT_EQ(stats.mmm_invocations,
            stats.squarings + stats.multiplications + 2);
}

TEST(Rsa, MessageOutOfRangeThrows) {
  auto rng = test::TestRng();
  const RsaKeyPair key = GenerateRsaKey(64, rng);
  EXPECT_THROW(RsaPublic(key, key.n), std::invalid_argument);
  EXPECT_THROW(RsaPrivate(key, key.n + BigUInt{1}), std::invalid_argument);
  EXPECT_THROW(RsaPrivateCrt(key, key.n), std::invalid_argument);
  EXPECT_THROW(RsaPrivateCrtPaired(key, key.n), std::invalid_argument);
  core::EngineStats stats;
  EXPECT_THROW(RsaPrivateOnHardwareModel(key, key.n, &stats),
               std::invalid_argument);
}

// Bellcore/Lenstra fault hygiene: a faulty CRT half-exponentiation yields
// a well-formed wrong signature whose gcd(sig^e - c, n) factors n.  The
// paired/batch paths verify sig^e mod n against the input and must throw
// rather than release the broken result.  Fault injection: a corrupted
// private exponent makes both halves compute a wrong (but well-formed)
// power — the same observable as a computation fault.
TEST(Rsa, CrtFaultIsDetectedBeforeRelease) {
  auto rng = test::TestRng();
  const RsaKeyPair key = GenerateRsaKey(64, rng);
  BigUInt m = rng.Below(key.n);
  if (m <= BigUInt{1}) m = BigUInt{2};
  const BigUInt c = RsaPublic(key, m);
  ASSERT_EQ(RsaPrivateCrtPaired(key, c), m);  // healthy path releases

  RsaKeyPair faulted = key;
  faulted.d = key.d + BigUInt{2};
  EXPECT_THROW(RsaPrivateCrtPaired(faulted, c), std::runtime_error);
  EXPECT_THROW(RsaPrivateCrt(faulted, c), std::runtime_error);

  core::ExpService service;
  const std::vector<BigUInt> messages{c};
  EXPECT_THROW(RsaSignBatch(faulted, messages, service), std::runtime_error);
  // The healthy key still signs the same batch.
  EXPECT_EQ(RsaSignBatch(key, messages, service).at(0), m);
}

// A backend without pairable streams still computes CRT — sequentially —
// and a mis-fielded service is a configuration error, not a fault.
TEST(Rsa, CrtPairedFallsBackForUnpairableBackends) {
  auto rng = test::TestRng();
  const RsaKeyPair key = GenerateRsaKey(64, rng);
  const BigUInt m = rng.Below(key.n);
  const BigUInt c = RsaPublic(key, m);
  core::EngineStats stats;
  EXPECT_EQ(RsaPrivateCrtPaired(key, c, &stats, "word-mont"), m);
  EXPECT_EQ(stats.paired_issues, 0u);  // word-serial: sequential issue
  EXPECT_GT(stats.single_issues, 0u);

  core::ExpService::Options gf2;
  gf2.engine_options.field = core::EngineField::kGf2;
  core::ExpService gf2_service(gf2);
  const std::vector<BigUInt> messages{c};
  EXPECT_THROW(RsaSignBatch(key, messages, gf2_service),
               std::invalid_argument);
}

// A hand-assembled CRT key with p == q (or p*q != n) would recombine to a
// well-formed wrong answer; the CRT paths must reject it loudly instead.
TEST(Rsa, MalformedCrtKeysAreRejected) {
  auto rng = test::TestRng();
  const RsaKeyPair key = GenerateRsaKey(64, rng);
  ASSERT_NE(key.p, key.q);  // GenerateRsaKey must never emit p == q

  RsaKeyPair equal_primes = key;
  equal_primes.q = equal_primes.p;
  equal_primes.n = equal_primes.p * equal_primes.p;
  const BigUInt c = rng.Below(key.p);
  EXPECT_THROW(RsaPrivateCrt(equal_primes, c), std::invalid_argument);
  EXPECT_THROW(RsaPrivateCrtPaired(equal_primes, c), std::invalid_argument);

  RsaKeyPair mismatched = key;
  mismatched.n += BigUInt{2};  // p*q != n
  EXPECT_THROW(RsaPrivateCrt(mismatched, c), std::invalid_argument);
  EXPECT_THROW(RsaPrivateCrtPaired(mismatched, c), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// RSA blinding (the sca lab's countermeasure; closure is asserted at gate
// level in test_sca_attack.cpp — here: functional equivalence)
// ---------------------------------------------------------------------------

// Acceptance: blinded outputs bit-identical to unblinded on a randomized
// sweep, for every option combination and both private-key paths.
TEST(RsaBlinding, BlindedMatchesUnblindedOnRandomSweep) {
  auto rng = test::TestRng();
  bignum::RandomBigUInt blind_rng(test::TestSeed(1));
  for (const std::size_t bits : {64u, 96u}) {
    const RsaKeyPair key = GenerateRsaKey(bits, rng);
    for (int trial = 0; trial < 6; ++trial) {
      const BigUInt c = rng.Below(key.n);
      const BigUInt expected = RsaPrivate(key, c);
      for (const bool blind_base : {true, false}) {
        for (const std::size_t blind_bits : {std::size_t{0}, std::size_t{16}}) {
          const RsaBlindingOptions options{blind_base, blind_bits};
          EXPECT_EQ(RsaPrivateBlinded(key, c, blind_rng, options), expected)
              << "bits=" << bits << " base=" << blind_base
              << " exp_bits=" << blind_bits;
          EXPECT_EQ(RsaPrivateCrtBlinded(key, c, blind_rng, options), expected)
              << "bits=" << bits << " base=" << blind_base
              << " exp_bits=" << blind_bits;
        }
      }
    }
  }
}

// Base blinding must actually randomize what the device exponentiates:
// two blinded runs of the same input consume different blinding units
// (observable here only through the rng stream advancing), yet agree.
TEST(RsaBlinding, FreshRandomnessPerCallSameResult) {
  auto rng = test::TestRng();
  const RsaKeyPair key = GenerateRsaKey(64, rng);
  const BigUInt c = rng.Below(key.n);
  bignum::RandomBigUInt blind_rng(test::TestSeed(2));
  const BigUInt first = RsaPrivateBlinded(key, c, blind_rng);
  const BigUInt second = RsaPrivateBlinded(key, c, blind_rng);
  EXPECT_EQ(first, second);
  EXPECT_EQ(first, RsaPrivate(key, c));
}

TEST(RsaBlinding, RejectsBadInputsAndKeys) {
  auto rng = test::TestRng();
  const RsaKeyPair key = GenerateRsaKey(64, rng);
  bignum::RandomBigUInt blind_rng(test::TestSeed(3));
  EXPECT_THROW(RsaPrivateBlinded(key, key.n, blind_rng),
               std::invalid_argument);
  EXPECT_THROW(RsaPrivateCrtBlinded(key, key.n, blind_rng),
               std::invalid_argument);
  // Exponent blinding needs the real factorization for the group order.
  RsaKeyPair mismatched = key;
  mismatched.n += BigUInt{2};
  const BigUInt c = rng.Below(key.n);
  EXPECT_THROW(RsaPrivateBlinded(mismatched, c % mismatched.n, blind_rng,
                                 RsaBlindingOptions{true, 16}),
               std::invalid_argument);
  EXPECT_THROW(RsaPrivateCrtBlinded(mismatched, c % mismatched.n, blind_rng),
               std::invalid_argument);
}

// The CRT-blinded path keeps the Bellcore/Lenstra fault check: corrupt
// the private exponent and the fault must be detected, not released.
TEST(RsaBlinding, CrtBlindedStillDetectsFaults) {
  auto rng = test::TestRng();
  const RsaKeyPair key = GenerateRsaKey(64, rng);
  bignum::RandomBigUInt blind_rng(test::TestSeed(4));
  RsaKeyPair faulty = key;
  faulty.d += RsaLambda(key);  // same signatures...
  faulty.d += BigUInt{1};   // ...then corrupted
  const BigUInt c = rng.Below(key.n);
  EXPECT_THROW(RsaPrivateCrtBlinded(faulty, c, blind_rng),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// ECC
// ---------------------------------------------------------------------------

TEST(Ecc, TinyCurveGeneratorOnCurve) {
  const Curve curve(CurveParams::Tiny97());
  EXPECT_TRUE(curve.IsOnCurve(curve.Generator()));
  EXPECT_TRUE(curve.IsOnCurve(AffinePoint::Infinity()));
  EXPECT_FALSE(curve.IsOnCurve(AffinePoint{BigUInt{1}, BigUInt{1}, false}));
}

// Exhaustive group-law check on the tiny curve: the affine reference and
// the Montgomery-domain Jacobian path must agree for every scalar.
TEST(Ecc, TinyCurveScalarMulMatchesRepeatedAddition) {
  const Curve curve(CurveParams::Tiny97());
  const AffinePoint g = curve.Generator();
  AffinePoint acc = AffinePoint::Infinity();
  for (std::uint64_t k = 0; k <= 120; ++k) {
    const AffinePoint via_jacobian = curve.ScalarMul(BigUInt{k}, g);
    EXPECT_EQ(via_jacobian, acc) << "k=" << k;
    EXPECT_TRUE(curve.IsOnCurve(acc));
    acc = curve.Add(acc, g);
  }
}

TEST(Ecc, TinyCurveGroupOrder) {
  // Find the order of G by repeated addition; ScalarMul(order) must be the
  // identity and the order must divide any k*G period.
  const Curve curve(CurveParams::Tiny97());
  const AffinePoint g = curve.Generator();
  AffinePoint acc = g;
  std::uint64_t order = 1;
  while (!acc.infinity) {
    acc = curve.Add(acc, g);
    ++order;
    ASSERT_LE(order, 200u);
  }
  // Hasse bound: |order - (p+1)| <= 2*sqrt(p) (order divides group order).
  EXPECT_GT(order, 1u);
  EXPECT_TRUE(curve.ScalarMul(BigUInt{order}, g).infinity);
  EXPECT_EQ(curve.ScalarMul(BigUInt{order + 1}, g), g);
}

TEST(Ecc, AdditionIsCommutativeAndAssociative) {
  const Curve curve(CurveParams::Tiny97());
  const AffinePoint g = curve.Generator();
  const AffinePoint g2 = curve.Double(g);
  const AffinePoint g3 = curve.Add(g2, g);
  EXPECT_EQ(curve.Add(g, g2), g3);
  EXPECT_EQ(curve.Add(curve.Add(g, g2), g3), curve.Add(g, curve.Add(g2, g3)));
}

TEST(Ecc, NegationAndIdentity) {
  const Curve curve(CurveParams::Tiny97());
  const AffinePoint g = curve.Generator();
  const AffinePoint neg = curve.Negate(g);
  EXPECT_TRUE(curve.IsOnCurve(neg));
  EXPECT_TRUE(curve.Add(g, neg).infinity);
  EXPECT_EQ(curve.Add(g, AffinePoint::Infinity()), g);
}

TEST(Ecc, P192GeneratorIsOnCurve) {
  const Curve curve(CurveParams::Secp192r1());
  EXPECT_TRUE(curve.IsOnCurve(curve.Generator()));
}

TEST(Ecc, P192OrderAnnihilatesGenerator) {
  const Curve curve(CurveParams::Secp192r1());
  // n*G computed as (n-1)*G + G to exercise both add paths; n*G = infinity.
  const AffinePoint g = curve.Generator();
  const AffinePoint almost =
      curve.ScalarMul(curve.Params().order - BigUInt{1}, g);
  EXPECT_TRUE(curve.IsOnCurve(almost));
  EXPECT_EQ(almost, curve.Negate(g)) << "(n-1)G must equal -G";
  EXPECT_TRUE(curve.Add(almost, g).infinity);
}

TEST(Ecc, P192ScalarMulIsHomomorphic) {
  auto rng = test::TestRng();
  const Curve curve(CurveParams::Secp192r1());
  const AffinePoint g = curve.Generator();
  const BigUInt k1 = rng.ExactBits(64);
  const BigUInt k2 = rng.ExactBits(64);
  const AffinePoint lhs = curve.ScalarMul(k1 + k2, g);
  const AffinePoint rhs = curve.Add(curve.ScalarMul(k1, g),
                                    curve.ScalarMul(k2, g));
  EXPECT_EQ(lhs, rhs);
}

TEST(Ecc, EcdhSharedSecretAgrees) {
  auto rng = test::TestRng();
  const Curve curve(CurveParams::Secp192r1());
  const AffinePoint g = curve.Generator();
  const BigUInt alice = rng.ExactBits(160);
  const BigUInt bob = rng.ExactBits(160);
  const AffinePoint alice_pub = curve.ScalarMul(alice, g);
  const AffinePoint bob_pub = curve.ScalarMul(bob, g);
  EXPECT_EQ(curve.ScalarMul(alice, bob_pub), curve.ScalarMul(bob, alice_pub));
}

TEST(Ecc, StatsCountFieldMultiplications) {
  const Curve curve(CurveParams::Secp192r1());
  EccStats stats;
  curve.ScalarMul(BigUInt::FromHex("deadbeefcafebabe"), curve.Generator(),
                  &stats);
  EXPECT_GT(stats.field_mults, 0u);
  EXPECT_GT(stats.field_squares, 0u);
  // 64-bit scalar: 63 doubles (~11M each) + ~40 adds (~16M each) + the
  // final Jacobian-to-affine conversion.
  const std::uint64_t total = stats.field_mults + stats.field_squares;
  EXPECT_GT(total, 63u * 8);
  EXPECT_LT(total, 64u * 12 + 45u * 17 + 20);
  EXPECT_EQ(stats.ModeledCycles(192), total * (3 * 192 + 4));
}

TEST(Ecc, ScalarReducedModuloOrder) {
  const Curve curve(CurveParams::Secp192r1());
  const AffinePoint g = curve.Generator();
  const BigUInt k{12345};
  EXPECT_EQ(curve.ScalarMul(k + curve.Params().order, g),
            curve.ScalarMul(k, g));
  EXPECT_TRUE(curve.ScalarMul(curve.Params().order, g).infinity);
  EXPECT_TRUE(curve.ScalarMul(BigUInt{0}, g).infinity);
}

}  // namespace
}  // namespace mont::crypto
