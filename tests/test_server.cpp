// Tests for the signing service front-end (src/server/): the wire codec
// and framing, the admission/shedding policy, the PKCS#1 v1.5 signature
// unit (SHA-256 vectors, encoding structure, sign/verify/tamper), the
// client retry taxonomy, and the service end to end — real signatures,
// typed errors for every refusal path, and counter conservation down
// into the ExpService underneath.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <future>
#include <string>
#include <vector>

#include "bignum/biguint.hpp"
#include "bignum/random.hpp"
#include "crypto/pkcs1.hpp"
#include "crypto/rsa.hpp"
#include "server/admission.hpp"
#include "server/client.hpp"
#include "server/keystore.hpp"
#include "server/signing_service.hpp"
#include "server/transport.hpp"
#include "server/wire.hpp"
#include "testutil.hpp"

namespace mont::server {
namespace {

using bignum::BigUInt;

std::vector<std::uint8_t> Bytes(const std::string& s) {
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

// One 512-bit test key, generated once (key generation is the slow part
// of these suites; every test shares it through this accessor).
const crypto::RsaKeyPair& TestKey() {
  static const crypto::RsaKeyPair key = [] {
    bignum::RandomBigUInt rng(0x5e21e57a11u);
    return crypto::GenerateRsaKey(512, rng);
  }();
  return key;
}

Keystore OneTenantKeystore(TenantConfig config = {}) {
  Keystore keystore;
  keystore.AddTenant(1, std::move(config));
  keystore.AddKey(1, 7, TestKey());
  return keystore;
}

// ---------------------------------------------------------------------------
// Wire codec and framing
// ---------------------------------------------------------------------------

TEST(Wire, SignRequestRoundTrip) {
  SignRequest request;
  request.type = RequestType::kSign;
  request.request_id = 0x1122334455667788ull;
  request.tenant_id = 42;
  request.key_id = 7;
  request.deadline_ticks = 1'000'000;
  request.message = Bytes("attack at dawn");
  const auto payload = EncodeSignRequest(request);
  const auto decoded = DecodeSignRequest(payload);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->request_id, request.request_id);
  EXPECT_EQ(decoded->tenant_id, request.tenant_id);
  EXPECT_EQ(decoded->key_id, request.key_id);
  EXPECT_EQ(decoded->deadline_ticks, request.deadline_ticks);
  EXPECT_EQ(decoded->message, request.message);
}

TEST(Wire, SignResponseRoundTrip) {
  SignResponse response;
  response.status = StatusCode::kShedOverload;
  response.request_id = 99;
  response.payload = Bytes("shed");
  const auto decoded = DecodeSignResponse(EncodeSignResponse(response));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->status, StatusCode::kShedOverload);
  EXPECT_EQ(decoded->request_id, 99u);
  EXPECT_EQ(decoded->payload, response.payload);
}

TEST(Wire, DecoderRejectsCorruptPayloads) {
  SignRequest request;
  request.message = Bytes("x");
  auto payload = EncodeSignRequest(request);
  // Empty / truncated.
  EXPECT_FALSE(DecodeSignRequest({}).has_value());
  EXPECT_FALSE(DecodeSignRequest(
                   std::span<const std::uint8_t>(payload.data(), 3))
                   .has_value());
  // Bad magic.
  auto bad_magic = payload;
  bad_magic[0] ^= 0xff;
  EXPECT_FALSE(DecodeSignRequest(bad_magic).has_value());
  // Bad version.
  auto bad_version = payload;
  bad_version[2] ^= 0xff;
  EXPECT_FALSE(DecodeSignRequest(bad_version).has_value());
  // Bad type.
  auto bad_type = payload;
  bad_type[3] = 0xee;
  EXPECT_FALSE(DecodeSignRequest(bad_type).has_value());
  // Trailing garbage.
  auto trailing = payload;
  trailing.push_back(0);
  EXPECT_FALSE(DecodeSignRequest(trailing).has_value());
}

TEST(Wire, FrameReaderSplitsChunkedStream) {
  SignRequest request;
  request.request_id = 5;
  request.message = Bytes("hello");
  const auto payload = EncodeSignRequest(request);
  auto stream = Frame(payload);
  const auto second = Frame(payload);
  stream.insert(stream.end(), second.begin(), second.end());

  FrameReader reader;
  // Feed one byte at a time: framing must reassemble exactly two frames.
  for (const std::uint8_t byte : stream) {
    reader.Feed(std::span<const std::uint8_t>(&byte, 1));
  }
  int frames = 0;
  while (auto next = reader.Next()) {
    EXPECT_EQ(*next, payload);
    ++frames;
  }
  EXPECT_EQ(frames, 2);
  EXPECT_FALSE(reader.OversizeError());
}

TEST(Wire, FrameReaderOversizeIsPermanent) {
  FrameReader reader(/*max_frame_bytes=*/16);
  // Length prefix declares 1 MiB.
  const std::vector<std::uint8_t> prefix = {0x00, 0x00, 0x10, 0x00};
  reader.Feed(prefix);
  EXPECT_TRUE(reader.OversizeError());
  EXPECT_FALSE(reader.Next().has_value());
  // The error does not clear, even on further (valid) input.
  reader.Feed(Frame(Bytes("ok")));
  EXPECT_TRUE(reader.OversizeError());
  EXPECT_FALSE(reader.Next().has_value());
}

// ---------------------------------------------------------------------------
// Token bucket and admission policy
// ---------------------------------------------------------------------------

TEST(TokenBucketTest, PrimesToCapacityAndRefillsWholePeriods) {
  TokenBucket bucket(/*capacity=*/2, /*refill_period_ticks=*/10);
  EXPECT_TRUE(bucket.TryAcquire(0));
  EXPECT_TRUE(bucket.TryAcquire(0));
  EXPECT_FALSE(bucket.TryAcquire(0));
  EXPECT_FALSE(bucket.TryAcquire(9));   // partial period earns nothing
  EXPECT_TRUE(bucket.TryAcquire(10));   // exactly one period -> one token
  EXPECT_FALSE(bucket.TryAcquire(19));  // fractional progress carried over
  EXPECT_TRUE(bucket.TryAcquire(20));
  // A long idle stretch refills to capacity, not beyond.
  EXPECT_EQ(bucket.Available(1000), 2u);
}

TEST(TokenBucketTest, ZeroPeriodIsUnlimited) {
  TokenBucket bucket(/*capacity=*/1, /*refill_period_ticks=*/0);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(bucket.TryAcquire(0));
}

TEST(Admission, InFlightBoundGivesBackpressure) {
  AdmissionController admission({/*queue_high_watermark=*/1000});
  TenantConfig config;
  config.max_in_flight = 2;
  config.refill_period_ticks = 0;  // unlimited rate: isolate the bound
  admission.RegisterTenant(1, config);
  EXPECT_TRUE(admission.Admit(1, 0).admitted);
  EXPECT_TRUE(admission.Admit(1, 0).admitted);
  const auto refused = admission.Admit(1, 0);
  EXPECT_FALSE(refused.admitted);
  EXPECT_EQ(refused.reason, StatusCode::kRejectedBackpressure);
  admission.OnComplete(1);
  EXPECT_TRUE(admission.Admit(1, 0).admitted);
  EXPECT_EQ(admission.TenantInFlight(1), 2u);
}

TEST(Admission, PriorityCutoffRampIsDeterministicAndMonotone) {
  AdmissionController admission({/*queue_high_watermark=*/8});
  EXPECT_EQ(admission.PriorityCutoff(0), 0);
  EXPECT_EQ(admission.PriorityCutoff(7), 0);
  EXPECT_EQ(admission.PriorityCutoff(8), 1);   // shedding starts
  EXPECT_EQ(admission.PriorityCutoff(16), 16);  // everything shed at 2x
  int last = 0;
  for (std::size_t depth = 0; depth <= 32; ++depth) {
    const int cutoff = admission.PriorityCutoff(depth);
    EXPECT_GE(cutoff, last);
    last = cutoff;
  }
  EXPECT_EQ(last, AdmissionController::kMaxPriority + 1);
}

TEST(Admission, ShedsLowPriorityFirstUnderLoad) {
  AdmissionController admission({/*queue_high_watermark=*/4});
  TenantConfig low;
  low.priority = 0;
  low.max_in_flight = 100;
  TenantConfig high;
  high.priority = 15;
  high.max_in_flight = 100;
  admission.RegisterTenant(1, low);
  admission.RegisterTenant(2, high);
  // Fill to the watermark with high-priority work.
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(admission.Admit(2, 0).admitted);
  // At the watermark the cutoff is 1: priority 0 is shed, 15 admitted.
  const auto shed = admission.Admit(1, 0);
  EXPECT_FALSE(shed.admitted);
  EXPECT_EQ(shed.reason, StatusCode::kShedOverload);
  EXPECT_TRUE(admission.Admit(2, 0).admitted);
}

// ---------------------------------------------------------------------------
// PKCS#1 v1.5 / SHA-256
// ---------------------------------------------------------------------------

std::string Hex(std::span<const std::uint8_t> bytes) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  for (const std::uint8_t b : bytes) {
    out.push_back(digits[b >> 4]);
    out.push_back(digits[b & 0xf]);
  }
  return out;
}

TEST(Pkcs1, Sha256KnownVectors) {
  const auto empty = crypto::Sha256({});
  EXPECT_EQ(Hex(empty),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  const auto abc_bytes = Bytes("abc");
  EXPECT_EQ(Hex(crypto::Sha256(abc_bytes)),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  // A two-block message (> 55 bytes forces a second padding block).
  const auto long_bytes = Bytes(
      "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  EXPECT_EQ(Hex(crypto::Sha256(long_bytes)),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Pkcs1, EncodingHasExactEmsaStructure) {
  const auto message = Bytes("structure check");
  const std::size_t k = 64;  // 512-bit modulus
  const BigUInt em = crypto::EmsaPkcs1V15Encode(message, k);
  const auto bytes = em.ToBytesBE(k);
  ASSERT_EQ(bytes.size(), k);
  EXPECT_EQ(bytes[0], 0x00);
  EXPECT_EQ(bytes[1], 0x01);
  // PS: 0xff padding up to the 0x00 separator before the DigestInfo.
  const std::size_t digest_info_len = 19 + 32;
  const std::size_t separator = k - digest_info_len - 1;
  for (std::size_t i = 2; i < separator; ++i) EXPECT_EQ(bytes[i], 0xff);
  EXPECT_EQ(bytes[separator], 0x00);
  // Trailing 32 bytes are the SHA-256 digest itself.
  const auto digest = crypto::Sha256(message);
  for (std::size_t i = 0; i < 32; ++i) {
    EXPECT_EQ(bytes[k - 32 + i], digest[i]);
  }
}

TEST(Pkcs1, RejectsTooSmallModulus) {
  EXPECT_THROW(crypto::EmsaPkcs1V15Encode({}, 61), std::invalid_argument);
}

TEST(Pkcs1, SignVerifyAndTamperDetection) {
  const auto& key = TestKey();
  const auto message = Bytes("a signed statement");
  const BigUInt signature = crypto::RsaSignPkcs1V15(key, message);
  EXPECT_TRUE(crypto::RsaVerifyPkcs1V15(key, message, signature));
  // Tampered message.
  const auto other = Bytes("a Signed statement");
  EXPECT_FALSE(crypto::RsaVerifyPkcs1V15(key, other, signature));
  // Tampered signature.
  EXPECT_FALSE(
      crypto::RsaVerifyPkcs1V15(key, message, signature + BigUInt{1}));
}

TEST(Pkcs1, ByteConversionRoundTrips) {
  auto rng = test::TestRng();
  for (const std::size_t bits : {1u, 8u, 9u, 31u, 32u, 33u, 511u, 512u}) {
    const BigUInt x = rng.ExactBits(bits);
    const auto bytes = x.ToBytesBE();
    EXPECT_EQ(BigUInt::FromBytesBE(bytes), x);
    // Padded conversion preserves the value.
    const auto padded = x.ToBytesBE(80);
    EXPECT_EQ(padded.size(), 80u);
    EXPECT_EQ(BigUInt::FromBytesBE(padded), x);
  }
}

// ---------------------------------------------------------------------------
// Client retry taxonomy
// ---------------------------------------------------------------------------

TEST(RetryTaxonomy, SafeStatusesAlwaysRetry) {
  for (const StatusCode status :
       {StatusCode::kRejectedBackpressure, StatusCode::kShedOverload,
        StatusCode::kInternalRetrying}) {
    EXPECT_TRUE(SigningClient::MayRetry(status, /*idempotent=*/true));
    EXPECT_TRUE(SigningClient::MayRetry(status, /*idempotent=*/false));
    EXPECT_TRUE(DefinitelyNotExecuted(status));
  }
}

TEST(RetryTaxonomy, AmbiguousStatusesRetryOnlyWhenIdempotent) {
  for (const StatusCode status :
       {StatusCode::kDeadlineExceeded, StatusCode::kTransportTimeout}) {
    EXPECT_TRUE(SigningClient::MayRetry(status, /*idempotent=*/true));
    // The forbidden case: a non-idempotent request must NEVER be resent
    // when the server might have executed it.
    EXPECT_FALSE(SigningClient::MayRetry(status, /*idempotent=*/false));
    EXPECT_FALSE(DefinitelyNotExecuted(status));
  }
}

TEST(RetryTaxonomy, PermanentStatusesNeverRetry) {
  for (const StatusCode status :
       {StatusCode::kOk, StatusCode::kUnknownTenant, StatusCode::kUnknownKey,
        StatusCode::kMalformedRequest, StatusCode::kFrameTooLarge,
        StatusCode::kShuttingDown}) {
    EXPECT_FALSE(SigningClient::MayRetry(status, /*idempotent=*/true));
    EXPECT_FALSE(SigningClient::MayRetry(status, /*idempotent=*/false));
  }
}

TEST(RetryTaxonomy, BackoffIsDeterministicBoundedAndCapped) {
  RetryPolicy policy;
  policy.base_backoff_micros = 100;
  policy.max_backoff_micros = 1000;
  // Two clients with the same seed replay the same schedule.
  Keystore keystore = OneTenantKeystore();
  SigningService service(std::move(keystore));
  InProcTransport transport(service);
  SigningClient a(transport, policy);
  SigningClient b(transport, policy);
  for (std::size_t attempt = 1; attempt <= 8; ++attempt) {
    const std::uint64_t delay_a = a.BackoffMicros(attempt);
    EXPECT_EQ(delay_a, b.BackoffMicros(attempt));
    // Jitter stays in [cap/2, cap] of the exponential value.
    const std::uint64_t cap =
        std::min<std::uint64_t>(100ull << (attempt - 1), 1000);
    EXPECT_GE(delay_a, cap / 2);
    EXPECT_LE(delay_a, cap);
  }
}

// ---------------------------------------------------------------------------
// SigningService end to end
// ---------------------------------------------------------------------------

SignRequest MakeRequest(const std::string& message,
                        std::uint64_t deadline_ticks = 0) {
  SignRequest request;
  request.request_id = 1;
  request.tenant_id = 1;
  request.key_id = 7;
  request.deadline_ticks = deadline_ticks;
  request.message = Bytes(message);
  return request;
}

TEST(SigningServiceTest, EndToEndSignatureVerifies) {
  SigningService service(OneTenantKeystore());
  const auto request = MakeRequest("sign me");
  const auto response =
      service.HandleRequestSync(EncodeSignRequest(request));
  ASSERT_EQ(response.status, StatusCode::kOk)
      << StatusCodeName(response.status);
  EXPECT_EQ(response.request_id, request.request_id);
  ASSERT_EQ(response.payload.size(), 64u);  // modulus-length signature
  const BigUInt signature = BigUInt::FromBytesBE(response.payload);
  EXPECT_TRUE(
      crypto::RsaVerifyPkcs1V15(TestKey(), request.message, signature));
  const auto counters = service.Snapshot();
  EXPECT_EQ(counters.admitted, 1u);
  EXPECT_EQ(counters.ok, 1u);
  EXPECT_EQ(counters.bad_signatures_released, 0u);
}

TEST(SigningServiceTest, PingAndLookupTaxonomy) {
  SigningService service(OneTenantKeystore());
  SignRequest ping = MakeRequest("");
  ping.type = RequestType::kPing;
  EXPECT_EQ(service.HandleRequestSync(EncodeSignRequest(ping)).status,
            StatusCode::kOk);
  auto wrong_tenant = MakeRequest("x");
  wrong_tenant.tenant_id = 999;
  EXPECT_EQ(
      service.HandleRequestSync(EncodeSignRequest(wrong_tenant)).status,
      StatusCode::kUnknownTenant);
  auto wrong_key = MakeRequest("x");
  wrong_key.key_id = 999;
  EXPECT_EQ(service.HandleRequestSync(EncodeSignRequest(wrong_key)).status,
            StatusCode::kUnknownKey);
  EXPECT_EQ(service.HandleRequestSync(Bytes("garbage")).status,
            StatusCode::kMalformedRequest);
  const auto counters = service.Snapshot();
  EXPECT_EQ(counters.pings, 1u);
  EXPECT_EQ(counters.unknown_tenant, 1u);
  EXPECT_EQ(counters.unknown_key, 1u);
  EXPECT_EQ(counters.malformed, 1u);
  EXPECT_EQ(counters.admitted, 0u);
}

TEST(SigningServiceTest, ExhaustedTokenBucketGivesTypedBackpressure) {
  TenantConfig config;
  config.burst = 1;
  config.refill_period_ticks = 60'000'000'000ull;  // one token a minute
  SigningService service(OneTenantKeystore(config));
  EXPECT_EQ(service.HandleRequestSync(EncodeSignRequest(MakeRequest("a")))
                .status,
            StatusCode::kOk);
  const auto refused =
      service.HandleRequestSync(EncodeSignRequest(MakeRequest("b")));
  EXPECT_EQ(refused.status, StatusCode::kRejectedBackpressure);
  const auto counters = service.Snapshot();
  EXPECT_EQ(counters.rejected_backpressure, 1u);
  EXPECT_EQ(counters.ok, 1u);
}

TEST(SigningServiceTest, ExpiredDeadlineIsTypedAndConserved) {
  SigningService service(OneTenantKeystore());
  // A 1-tick (1 ns) deadline always expires before a worker claims the
  // half-jobs.
  const auto response = service.HandleRequestSync(
      EncodeSignRequest(MakeRequest("too slow", /*deadline_ticks=*/1)));
  EXPECT_EQ(response.status, StatusCode::kDeadlineExceeded);
  service.Wait();
  const auto counters = service.Snapshot();
  EXPECT_EQ(counters.deadline_exceeded, 1u);
  EXPECT_EQ(counters.ok, 0u);
  // The conservation contract holds all the way down: every ExpService
  // job either completed or was deadline-cancelled.
  const auto service_counters = service.ServiceSnapshot();
  EXPECT_EQ(service_counters.jobs_submitted,
            service_counters.jobs_completed +
                service_counters.deadline_exceeded);
}

TEST(SigningServiceTest, OverloadShedsByPriorityWithTypedError) {
  Keystore keystore;
  TenantConfig flood;
  flood.priority = 15;
  flood.burst = 1000;
  flood.max_in_flight = 1000;
  TenantConfig victim;
  victim.priority = 0;
  victim.burst = 1000;
  victim.max_in_flight = 1000;
  keystore.AddTenant(1, flood);
  keystore.AddTenant(2, victim);
  keystore.AddKey(1, 7, TestKey());
  keystore.AddKey(2, 7, TestKey());

  SigningService::Options options;
  options.admission.queue_high_watermark = 2;
  options.service.workers = 1;
  SigningService service(std::move(keystore), options);

  // Pile up high-priority in-flight work past the watermark (depth 4 is
  // reached because the rising cutoff — 0,0,1,8 — stays at or below the
  // flooder's priority 15 for the first four admissions).
  std::atomic<int> done{0};
  for (int i = 0; i < 4; ++i) {
    auto request = MakeRequest("flood");
    request.tenant_id = 1;
    service.HandleRequest(EncodeSignRequest(request),
                          [&done](SignResponse) { ++done; });
  }
  // The low-priority tenant is now below the rising cutoff.
  auto starved = MakeRequest("victim");
  starved.tenant_id = 2;
  const auto response =
      service.HandleRequestSync(EncodeSignRequest(starved));
  EXPECT_EQ(response.status, StatusCode::kShedOverload);
  service.Wait();
  EXPECT_EQ(service.Snapshot().shed_overload, 1u);
}

TEST(SigningServiceTest, OversizeFrameRejectedAtTransport) {
  SigningService service(OneTenantKeystore());
  InProcTransport transport(service);
  // A frame whose length prefix declares 1 MiB (over the 64 KiB cap).
  std::vector<std::uint8_t> oversize = {0x00, 0x00, 0x10, 0x00};
  auto future = transport.CallRaw(std::move(oversize));
  const auto response = future.get();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, StatusCode::kFrameTooLarge);
  // It never reached the service.
  EXPECT_EQ(service.Snapshot().requests, 0u);
}

TEST(SigningServiceTest, ClientSignsThroughFullWirePath) {
  SigningService service(OneTenantKeystore());
  InProcTransport transport(service);
  SigningClient client(transport);
  const auto message = Bytes("via the wire");
  const auto outcome = client.Sign(1, 7, message);
  ASSERT_EQ(outcome.status, StatusCode::kOk);
  EXPECT_EQ(outcome.attempts, 1u);
  EXPECT_TRUE(crypto::RsaVerifyPkcs1V15(
      TestKey(), message, BigUInt::FromBytesBE(outcome.signature)));
}

TEST(SigningServiceTest, NonIdempotentRequestNotRetriedAfterDeadline) {
  SigningService service(OneTenantKeystore());
  InProcTransport transport(service);
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.base_backoff_micros = 1;
  SigningClient client(transport, policy);
  const auto message = Bytes("exactly once");
  // deadline_ticks = 1 -> every attempt comes back DEADLINE_EXCEEDED.
  const auto once = client.Sign(1, 7, message, /*deadline_ticks=*/1,
                                /*idempotent=*/false);
  EXPECT_EQ(once.status, StatusCode::kDeadlineExceeded);
  EXPECT_EQ(once.attempts, 1u);  // ambiguous + non-idempotent: no retry
  const auto retried = client.Sign(1, 7, message, /*deadline_ticks=*/1,
                                   /*idempotent=*/true);
  EXPECT_EQ(retried.status, StatusCode::kDeadlineExceeded);
  EXPECT_EQ(retried.attempts, 4u);  // idempotent: retried to exhaustion
}

TEST(SigningServiceTest, RejectsMalformedKeysUpFront) {
  auto key = TestKey();
  key.q = key.p;  // p == q: not a CRT key
  Keystore keystore;
  keystore.AddTenant(1, {});
  keystore.AddKey(1, 7, key);
  EXPECT_THROW(SigningService{std::move(keystore)}, std::invalid_argument);
}

TEST(SigningServiceTest, DestructorDrainsInFlightRequests) {
  std::atomic<int> responses{0};
  std::atomic<int> ok{0};
  {
    SigningService service(OneTenantKeystore());
    for (int i = 0; i < 8; ++i) {
      service.HandleRequest(EncodeSignRequest(MakeRequest("drain me")),
                            [&](SignResponse response) {
                              ++responses;
                              if (response.status == StatusCode::kOk) ++ok;
                            });
    }
    // Destroyed with work still in flight.
  }
  // Every admitted request got exactly one response, none were lost.
  EXPECT_EQ(responses.load(), 8);
  EXPECT_EQ(ok.load(), 8);
}

}  // namespace
}  // namespace mont::server
