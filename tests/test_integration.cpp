// Cross-module integration tests: complete cryptographic flows routed
// through the cycle-accurate hardware models, agreement between every
// multiplier implementation in the repo, and gate-level/behavioural
// lockstep under the dual-field and fault dimensions simultaneously.
#include <gtest/gtest.h>

#include "baseline/blum_paar.hpp"
#include "bignum/gf2.hpp"
#include "bignum/montgomery.hpp"
#include "bignum/prime.hpp"
#include "bignum/random.hpp"
#include "core/exponentiator.hpp"
#include "core/high_radix.hpp"
#include "core/interleaved.hpp"
#include "core/mmmc.hpp"
#include "crypto/ecc.hpp"
#include "crypto/rsa.hpp"
#include "testutil.hpp"

namespace mont {
namespace {

using bignum::BigUInt;
using bignum::RandomBigUInt;

// A full RSA round trip where the private operation runs on the
// clock-by-clock MMMC model — every multiplication of the decryption is
// simulated register-for-register.
TEST(Integration, RsaOnCycleAccurateCircuit) {
  auto rng = test::TestRng();
  const crypto::RsaKeyPair key = crypto::GenerateRsaKey(32, rng);
  core::Exponentiator hw(key.n, "mmmc");
  for (int trial = 0; trial < 3; ++trial) {
    const BigUInt m = rng.Below(key.n);
    const BigUInt c = crypto::RsaPublic(key, m);
    core::EngineStats stats;
    EXPECT_EQ(hw.ModExp(c, key.d, &stats), m);
    EXPECT_EQ(stats.engine_cycles,
              stats.mmm_invocations * (3 * key.n.BitLength() + 4));
  }
}

// Every multiplier in the repo computes the same Montgomery product
// (after normalising for each design's R).
TEST(Integration, AllMultipliersAgree) {
  auto rng = test::TestRng();
  const std::size_t bits = 24;
  const BigUInt n = rng.OddExactBits(bits);
  const BigUInt two_n = n << 1;

  bignum::BitSerialMontgomery software(n);
  core::Mmmc behavioural(n);
  core::InterleavedMmmc interleaved(n);
  core::HighRadixMultiplier radix4(n, 4);
  baseline::BlumPaarRadix2 blum_paar(n);

  const BigUInt two_inv = BigUInt::ModInverse(BigUInt{2}, n);
  for (int trial = 0; trial < 10; ++trial) {
    const BigUInt x = rng.Below(two_n);
    const BigUInt y = rng.Below(two_n);
    const BigUInt want = software.MultiplyAlg2(x, y);

    EXPECT_EQ(behavioural.Multiply(x, y), want);
    const auto pair = interleaved.MultiplyPair(x, y, y, x);
    EXPECT_EQ(pair.a, want);
    EXPECT_EQ(pair.b, want) << "commuted operands on channel B";
    // Radix-4 R may differ from 2^(l+2) by one halving step granularity.
    const BigUInt r2 = software.R();
    const BigUInt r4 = radix4.R();
    BigUInt adjusted = radix4.Multiply(x, y) % n;
    for (BigUInt r = r2; r < r4; r <<= 1) {
      adjusted = (adjusted * BigUInt{2}) % n;
    }
    EXPECT_EQ(adjusted, want % n) << "radix-4 after scaling";
    // Blum-Paar: one extra halving.
    EXPECT_EQ(blum_paar.Multiply(x, y) % n, (want % n * two_inv) % n);
  }
}

// The dual-field claim end to end: the same behavioural circuit class
// handles an RSA-style product and an AES-field product, both verified
// against independent arithmetic.
TEST(Integration, DualFieldServesBothCryptosystems) {
  // GF(p): a toy RSA multiply.
  const BigUInt n{187};  // 11 * 17
  core::Mmmc gfp(n, core::FieldMode::kGfP);
  bignum::BitSerialMontgomery ref(n);
  EXPECT_EQ(gfp.Multiply(BigUInt{123}, BigUInt{45}),
            ref.MultiplyAlg2(BigUInt{123}, BigUInt{45}));

  // GF(2^8): an AES-field multiply on the same architecture.
  const BigUInt f{0x11b};
  core::Mmmc gf2(f, core::FieldMode::kGf2);
  EXPECT_EQ(gf2.Multiply(BigUInt{0x57}, BigUInt{0x83}),
            bignum::gf2::MontMul(BigUInt{0x57}, BigUInt{0x83}, f));
  // Both run the same schedule.
  std::uint64_t cp = 0, c2 = 0;
  gfp.Multiply(BigUInt{1}, BigUInt{1}, &cp);
  gf2.Multiply(BigUInt{1}, BigUInt{1}, &c2);
  EXPECT_EQ(cp, 3u * 8 + 4);
  EXPECT_EQ(c2, 3u * 8 + 4);
}

// ECDH over P-192 where one party's scalar multiplication charges cycles
// against the hardware model and the other uses plain affine arithmetic —
// they must agree, tying the whole stack together.
TEST(Integration, MixedFidelityEcdh) {
  auto rng = test::TestRng();
  const crypto::Curve curve(crypto::CurveParams::Secp192r1());
  const crypto::AffinePoint g = curve.Generator();
  const BigUInt a = rng.ExactBits(96);
  const BigUInt b = rng.ExactBits(96);
  crypto::EccStats stats;
  const auto shared_hw =
      curve.ScalarMul(a, curve.ScalarMul(b, g, &stats), &stats);
  // Affine ladder by repeated addition for the tiny scalar check is too
  // slow at 96 bits; use the homomorphism instead: a*(b*G) == (a*b mod n)*G.
  const BigUInt ab = (a * b) % curve.Params().order;
  EXPECT_EQ(shared_hw, curve.ScalarMul(ab, g));
  EXPECT_GT(stats.ModeledCycles(192), 0u);
}

// Primality, keygen, exponentiation and the interleaved datapath in one
// flow: generate a prime, run Fermat on the dual-channel exponentiator.
TEST(Integration, FermatOnInterleavedDatapath) {
  auto rng = test::TestRng();
  const BigUInt p = bignum::GeneratePrime(24, rng, 12);
  core::InterleavedExponentiator exp(p);
  for (const std::uint64_t base : {2ull, 3ull, 65537ull}) {
    EXPECT_TRUE(exp.ModExp(BigUInt{base} % p, p - BigUInt{1}).IsOne())
        << "base=" << base;
  }
}

}  // namespace
}  // namespace mont
