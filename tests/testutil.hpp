// testutil.hpp — the shared test harness: per-test seeded RNG, the
// reference Montgomery oracle (x * y * R^-1 mod N), and operand-sweep
// helpers.  Every suite builds on these instead of re-rolling its own
// fixture; gate-level drive helpers live in testutil_netlist.hpp so that
// bignum-layer suites do not pull in the rtl/core headers.
#pragma once

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "bignum/biguint.hpp"
#include "bignum/random.hpp"

namespace mont::test {

// ---------------------------------------------------------------------------
// Seeded-RNG fixtures
// ---------------------------------------------------------------------------

/// Deterministic seed derived (FNV-1a) from the running test's full name —
/// every test gets its own reproducible stream without hand-picked magic
/// constants, and parameterized instantiations (whose names embed the
/// parameter) get distinct streams per parameter.
inline std::uint64_t TestSeed(std::uint64_t salt = 0) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  const auto mix = [&h](const char* s) {
    for (; s != nullptr && *s != '\0'; ++s) {
      h ^= static_cast<unsigned char>(*s);
      h *= 0x100000001b3ull;
    }
  };
  if (const auto* info =
          ::testing::UnitTest::GetInstance()->current_test_info()) {
    mix(info->test_suite_name());
    mix(".");
    mix(info->name());
  }
  return h ^ salt;
}

/// A bignum RNG seeded from the current test's name.  `salt` distinguishes
/// multiple independent streams inside one test (e.g. per bit length).
inline bignum::RandomBigUInt TestRng(std::uint64_t salt = 0) {
  return bignum::RandomBigUInt(TestSeed(salt));
}

// ---------------------------------------------------------------------------
// Reference Montgomery oracle
// ---------------------------------------------------------------------------

/// The mathematical definition every multiplier in the repo is validated
/// against: (x * y * R^-1) mod N, for odd N and gcd(R, N) = 1.
inline bignum::BigUInt MontOracle(const bignum::BigUInt& x,
                                  const bignum::BigUInt& y,
                                  const bignum::BigUInt& n,
                                  const bignum::BigUInt& r) {
  using bignum::BigUInt;
  return (x * y * BigUInt::ModInverse(r % n, n)) % n;
}

/// Oracle with R = 2^r_exponent (the common case: the paper's R = 2^(l+2)).
inline bignum::BigUInt MontOracle(const bignum::BigUInt& x,
                                  const bignum::BigUInt& y,
                                  const bignum::BigUInt& n,
                                  std::size_t r_exponent) {
  return MontOracle(x, y, n, bignum::BigUInt::PowerOfTwo(r_exponent));
}

/// Checks a chainable (Algorithm 2 style) Montgomery product: congruent to
/// the oracle mod N and bounded below 2N so outputs can feed back in.
inline ::testing::AssertionResult IsChainableMontProduct(
    const bignum::BigUInt& got, const bignum::BigUInt& x,
    const bignum::BigUInt& y, const bignum::BigUInt& n,
    const bignum::BigUInt& r) {
  if (got >= (n << 1)) {
    return ::testing::AssertionFailure()
           << "result 0x" << got.ToHex() << " >= 2N (N = 0x" << n.ToHex()
           << ")";
  }
  const bignum::BigUInt expect = MontOracle(x, y, n, r);
  if (got % n != expect) {
    return ::testing::AssertionFailure()
           << "result 0x" << got.ToHex() << " != x*y*R^-1 mod N = 0x"
           << expect.ToHex() << " for x = 0x" << x.ToHex() << ", y = 0x"
           << y.ToHex() << ", N = 0x" << n.ToHex();
  }
  return ::testing::AssertionSuccess();
}

/// Checks a fully reduced Montgomery product (word-level variants).
inline ::testing::AssertionResult IsReducedMontProduct(
    const bignum::BigUInt& got, const bignum::BigUInt& x,
    const bignum::BigUInt& y, const bignum::BigUInt& n,
    const bignum::BigUInt& r) {
  if (got >= n) {
    return ::testing::AssertionFailure()
           << "result 0x" << got.ToHex() << " not reduced below N = 0x"
           << n.ToHex();
  }
  const bignum::BigUInt expect = MontOracle(x, y, n, r);
  if (got != expect) {
    return ::testing::AssertionFailure()
           << "result 0x" << got.ToHex() << " != x*y*R^-1 mod N = 0x"
           << expect.ToHex() << " for x = 0x" << x.ToHex() << ", y = 0x"
           << y.ToHex() << ", N = 0x" << n.ToHex();
  }
  return ::testing::AssertionSuccess();
}

// ---------------------------------------------------------------------------
// Operand sweeps
// ---------------------------------------------------------------------------

/// Gate-level-affordable operand lengths for netlist simulations.
inline constexpr std::size_t kGateLevelBitLengths[] = {2,  3,  4,  5,  8,
                                                       12, 16, 24, 32, 48};

/// Software-model operand lengths, chosen to straddle limb boundaries.
inline constexpr std::size_t kSoftwareBitLengths[] = {8,   16,  31,  32,  33,
                                                      64,  128, 160, 256, 512};

/// Calls fn(x, y) for every pair of boundary operands {0, 1, bound-1} and
/// then for `trials` uniform pairs below `bound`.  The boundary pairs hit
/// the all-zero datapath, the multiplicative identity, and the saturated
/// top-of-range cases every multiplier must survive.
template <typename Fn>
void ForEachOperandPair(bignum::RandomBigUInt& rng,
                        const bignum::BigUInt& bound, int trials, Fn&& fn) {
  using bignum::BigUInt;
  const BigUInt one{1};
  std::vector<BigUInt> edges;
  edges.push_back(BigUInt{});
  if (bound > one) edges.push_back(one);
  if (!bound.IsZero()) edges.push_back(bound - one);
  for (const BigUInt& x : edges) {
    for (const BigUInt& y : edges) {
      fn(x, y);
    }
  }
  for (int trial = 0; trial < trials; ++trial) {
    fn(rng.Below(bound), rng.Below(bound));
  }
}

}  // namespace mont::test
