// Tests for the Montgomery-parameter bound theory (§2/Eq. 2 of the paper,
// Walter CT-RSA 2002): minimal R, chaining closure, and the empirical
// sharpness of the bound — R one power of two smaller must actually break
// chaining for some inputs, showing the paper's R = 2^(l+2) is optimal.
#include <gtest/gtest.h>

#include "bignum/bounds.hpp"
#include "bignum/montgomery.hpp"
#include "bignum/random.hpp"
#include "testutil.hpp"

namespace mont::bignum {
namespace {

TEST(Bounds, MinimalExponentIsLPlusTwo) {
  auto rng = test::TestRng();
  for (const std::size_t bits : {3u, 8u, 64u, 192u, 1024u}) {
    const BigUInt n = rng.OddExactBits(bits);
    EXPECT_EQ(MinimalWalterExponent(n), bits + 2) << "bits=" << bits;
    EXPECT_TRUE(SatisfiesWalterBound(n, BigUInt::PowerOfTwo(bits + 2)));
    EXPECT_FALSE(SatisfiesWalterBound(n, BigUInt::PowerOfTwo(bits + 1)))
        << "one factor of two less must fail for a full-length modulus";
  }
}

TEST(Bounds, SmallModulusCanNeedLessThanTopLength) {
  // N = 5 (l = 3): 4N = 20, minimal R = 32 = 2^5 = 2^(l+2).
  EXPECT_EQ(MinimalWalterExponent(BigUInt{5}), 5u);
  // N = 3 (l = 2): 4N = 12, minimal R = 16 = 2^4 = 2^(l+2).
  EXPECT_EQ(MinimalWalterExponent(BigUInt{3}), 4u);
}

TEST(Bounds, OutputBoundClosesUnderWalterR) {
  auto rng = test::TestRng();
  for (const std::size_t bits : {8u, 32u, 128u}) {
    const BigUInt n = rng.OddExactBits(bits);
    const BigUInt r = BigUInt::PowerOfTwo(bits + 2);
    const BigUInt two_n = n << 1;
    // Inputs < 2N -> output bound < 2N: the Eq. 2 closure.
    const BigUInt bound = MontgomeryOutputBound(two_n, two_n, r, n);
    EXPECT_TRUE(IsChainable(bound, n)) << "bits=" << bits;
  }
}

TEST(Bounds, OutputBoundFailsForSmallerR) {
  auto rng = test::TestRng();
  const BigUInt n = rng.OddExactBits(64);
  const BigUInt r_small = BigUInt::PowerOfTwo(65);  // 2^(l+1) < 4N
  const BigUInt two_n = n << 1;
  const BigUInt bound = MontgomeryOutputBound(two_n, two_n, r_small, n);
  EXPECT_FALSE(IsChainable(bound, n))
      << "R below Walter's bound cannot guarantee closure";
}

// Empirical sharpness: with R = 2^(l+1) there exist chainable inputs whose
// product escapes [0, 2N) — i.e. the paper could not have used fewer
// iterations.
TEST(Bounds, WalterBoundIsEmpiricallySharp) {
  const BigUInt n{13};  // l = 4
  const std::size_t r_exp = 5;  // 2^(l+1), one less than the paper's l+2
  const BigUInt two_n = n << 1;
  bool escape_found = false;
  for (std::uint64_t x = 0; x < 26 && !escape_found; ++x) {
    for (std::uint64_t y = 0; y < 26 && !escape_found; ++y) {
      // Radix-2 Montgomery with only l+1 iterations (R = 2^(l+1)).
      BigUInt t;
      for (std::size_t i = 0; i < r_exp; ++i) {
        const bool xi = BigUInt{x}.Bit(i);
        const bool mi = t.Bit(0) ^ (xi && BigUInt{y}.Bit(0));
        if (xi) t += BigUInt{y};
        if (mi) t += n;
        t >>= 1;
      }
      if (t >= two_n) escape_found = true;
    }
  }
  EXPECT_TRUE(escape_found)
      << "R = 2^(l+1) must fail closure for some legal input pair";
}

TEST(Bounds, IterationComparisonMatchesPaper) {
  const IterationComparison cmp = CompareIterationCounts(1024);
  EXPECT_EQ(cmp.walter, 1026u);
  EXPECT_EQ(cmp.iwamura, 1026u);
  EXPECT_EQ(cmp.blum_paar, 1027u);
  EXPECT_LT(cmp.walter, cmp.blum_paar)
      << "the paper's whole §4.4 argument in one line";
}

// Cross-check with the real context: BitSerialMontgomery uses exactly the
// minimal exponent.
TEST(Bounds, ContextUsesMinimalR) {
  auto rng = test::TestRng();
  const BigUInt n = rng.OddExactBits(96);
  const BitSerialMontgomery ctx(n);
  EXPECT_EQ(ctx.R(), BigUInt::PowerOfTwo(MinimalWalterExponent(n)));
}

}  // namespace
}  // namespace mont::bignum
