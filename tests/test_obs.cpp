// Unit suite for the observability layer (src/obs): metric primitives,
// the span tracer's ring/merge/export behaviour, and the end-to-end
// properties the rest of the stack relies on —
//
//   * histogram bucket geometry is exact below 4, log-linear above, and
//     saturates into an explicit overflow bucket past 2^40;
//   * ring wraparound keeps the newest events and counts every drop;
//   * striped counters merge exactly across threads (this suite also
//     runs under the TSan preset via `ctest -L obs`);
//   * two deterministic-executor replays of the same seed export
//     byte-identical chrome://tracing JSON — the replay contract;
//   * conservation invariants and the STATS wire verb answer from the
//     same snapshot.
//
// The chaos case at the bottom doubles as the CI trace artifact: it
// writes `chaos_seeded.trace.json` into the test working directory,
// which the CI workflow uploads for loading in ui.perfetto.dev.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bignum/biguint.hpp"
#include "bignum/random.hpp"
#include "core/exp_service.hpp"
#include "crypto/rsa.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "server/chaos.hpp"
#include "server/keystore.hpp"
#include "server/signing_service.hpp"
#include "server/wire.hpp"

namespace mont::obs {
namespace {

using bignum::BigUInt;

// ---------------------------------------------------------------------------
// Histogram bucket geometry
// ---------------------------------------------------------------------------

TEST(HistogramGeometry, ExactBucketsBelowFour) {
  for (std::uint64_t v = 0; v < 4; ++v) {
    EXPECT_EQ(HistogramBucketIndex(v), v);
    EXPECT_EQ(HistogramBucketLowerBound(v), v);
  }
}

TEST(HistogramGeometry, LowerBoundBracketsEveryValue) {
  // Walk powers of two and their neighbours across the whole range: each
  // value must land in a bucket whose [lower, next-lower) range holds it.
  for (int shift = 2; shift < 40; ++shift) {
    for (std::int64_t delta : {-1, 0, 1}) {
      const std::uint64_t v =
          (std::uint64_t{1} << shift) + static_cast<std::uint64_t>(delta);
      const std::size_t index = HistogramBucketIndex(v);
      EXPECT_LE(HistogramBucketLowerBound(index), v)
          << "value " << v << " below its bucket";
      EXPECT_GT(HistogramBucketLowerBound(index + 1), v)
          << "value " << v << " past its bucket";
    }
  }
}

TEST(HistogramGeometry, BucketIndexIsMonotonic) {
  std::size_t last = 0;
  for (int shift = 0; shift < 39; ++shift) {
    const std::size_t index = HistogramBucketIndex(std::uint64_t{1} << shift);
    EXPECT_GE(index, last);
    last = index;
  }
}

TEST(HistogramCell, OverflowBucketPastTwoToTheForty) {
  Registry registry;
  Histogram histogram = registry.GetHistogram("test.latency");
  histogram.Record(3);
  histogram.Record(std::uint64_t{1} << 40);       // first overflow value
  histogram.Record(~std::uint64_t{0});            // u64 max
  const HistogramSnapshot snapshot =
      registry.Snapshot().histograms.at("test.latency");
  EXPECT_EQ(snapshot.count, 3u);
  EXPECT_EQ(snapshot.overflow, 2u);
  EXPECT_EQ(snapshot.min, 3u);
  EXPECT_EQ(snapshot.max, ~std::uint64_t{0});
  // The overflow quantile answers `max`, not a bucket bound.
  EXPECT_EQ(snapshot.Percentile(0.99), ~std::uint64_t{0});
}

TEST(HistogramCell, PercentileAnswersFromBucketLowerBounds) {
  Registry registry;
  Histogram histogram = registry.GetHistogram("test.p");
  for (std::uint64_t v = 0; v < 100; ++v) histogram.Record(v);
  const HistogramSnapshot snapshot =
      registry.Snapshot().histograms.at("test.p");
  EXPECT_EQ(snapshot.count, 100u);
  const std::uint64_t p50 = snapshot.Percentile(0.50);
  const std::uint64_t p95 = snapshot.Percentile(0.95);
  EXPECT_LE(p50, 50u);
  EXPECT_GE(p50, HistogramBucketLowerBound(HistogramBucketIndex(50)) / 2);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, 99u);
}

// ---------------------------------------------------------------------------
// Registry primitives
// ---------------------------------------------------------------------------

TEST(RegistryTest, SameNameSharesOneCell) {
  Registry registry;
  Counter a = registry.GetCounter("shared.count");
  Counter b = registry.GetCounter("shared.count");
  a.Add(3);
  b.Add(4);
  EXPECT_EQ(a.Value(), 7u);
  EXPECT_EQ(registry.Snapshot().CounterValue("shared.count"), 7u);
}

TEST(RegistryTest, DefaultHandlesAreNoOpSinks) {
  Counter counter;
  Gauge gauge;
  Histogram histogram;
  counter.Increment();
  gauge.Set(5);
  gauge.RecordMax(9);
  histogram.Record(42);
  EXPECT_EQ(counter.Value(), 0u);
  EXPECT_EQ(gauge.Value(), 0);
}

TEST(RegistryTest, StripedCounterMergesExactlyAcrossThreads) {
  Registry registry;
  Counter counter = registry.GetCounter("mt.count");
  Gauge high_water = registry.GetGauge("mt.max");
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIncrements; ++i) counter.Increment();
      high_water.RecordMax(t);
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.Value(),
            static_cast<std::uint64_t>(kThreads) * kIncrements);
  EXPECT_EQ(high_water.Value(), kThreads - 1);
}

TEST(RegistryTest, ConservationInvariantReportsImbalanceByName) {
  Registry registry;
  registry.AddInvariant("test.conservation", {"in"}, {"out.a", "out.b"});
  Counter in = registry.GetCounter("in");
  Counter out_a = registry.GetCounter("out.a");
  Counter out_b = registry.GetCounter("out.b");
  in.Add(5);
  out_a.Add(3);
  out_b.Add(2);
  EXPECT_TRUE(registry.CheckInvariants(registry.Snapshot()).empty());

  in.Increment();  // 6 != 3 + 2
  const std::vector<std::string> violations =
      registry.CheckInvariants(registry.Snapshot());
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("test.conservation"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Tracer: ring, merge, export
// ---------------------------------------------------------------------------

TEST(TracerTest, DisabledTracerBuffersNothing) {
  Tracer tracer;
  tracer.set_enabled(false);
  EXPECT_FALSE(tracer.enabled());
  tracer.Instant("ev", 1, 0, 10);
  tracer.Complete("span", 1, 0, 10, 20);
  EXPECT_EQ(tracer.EventCount(), 0u);
}

TEST(TracerTest, RingWraparoundKeepsNewestAndCountsDrops) {
  Tracer::Options options;
  options.ring_capacity = 8;
  Tracer tracer(options);
  for (std::uint64_t i = 0; i < 20; ++i) tracer.Instant("ev", i, 0, i);
  EXPECT_EQ(tracer.EventCount(), 8u);
  EXPECT_EQ(tracer.DroppedEvents(), 12u);
  const std::vector<TraceEvent> events = tracer.SortedEvents();
  ASSERT_EQ(events.size(), 8u);
  // The survivors are the newest eight, still in timestamp order.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].ts, 12 + i);
  }
  tracer.Clear();
  EXPECT_EQ(tracer.EventCount(), 0u);
  EXPECT_EQ(tracer.DroppedEvents(), 0u);
}

TEST(TracerTest, CrossThreadShardsMergeInTimestampOrder) {
  Tracer tracer;
  constexpr int kThreads = 4;
  constexpr std::uint64_t kEvents = 64;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kEvents; ++i) {
        tracer.Instant("ev", static_cast<std::uint64_t>(t), 0,
                       i * kThreads + static_cast<std::uint64_t>(t));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(tracer.EventCount(), kThreads * kEvents);
  EXPECT_EQ(tracer.DroppedEvents(), 0u);
  const std::vector<TraceEvent> events = tracer.SortedEvents();
  ASSERT_EQ(events.size(), kThreads * kEvents);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].ts, events[i].ts);
  }
}

TEST(TracerTest, ExportIsWellFormedChromeJson) {
  Tracer tracer;
  tracer.Instant("point", 7, 2, 100, {{"tenant", 3}});
  tracer.Complete("span", 7, 2, 100, 250, {{"ok", 1}});
  const std::string json = tracer.ExportChromeJson();
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"name\":\"span\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":150"), std::string::npos);
  EXPECT_NE(json.find("\"tenant\":3"), std::string::npos);
  EXPECT_EQ(json.back(), '\n');
}

// ---------------------------------------------------------------------------
// Deterministic replay: the byte-identity contract
// ---------------------------------------------------------------------------

/// One seeded bursty run on the DeterministicExecutor with a fresh
/// tracer; returns the exported JSON.
std::string ReplayTraceJson() {
  bignum::RandomBigUInt rng(0xdecaf);
  std::vector<BigUInt> pool;
  pool.push_back(rng.OddExactBits(128));
  pool.push_back(rng.OddExactBits(192));

  Tracer tracer;
  core::ExpService::Options options;
  options.workers = 3;
  options.scheduler = core::SchedulerKind::kStealing;
  options.tracer = &tracer;
  core::DeterministicExecutor exec(options);
  for (std::uint64_t j = 0; j < 24; ++j) {
    const BigUInt& n = pool[j % pool.size()];
    exec.SubmitAt(j * 1000, n, rng.Below(n), rng.Below(n));
  }
  exec.RunUntilIdle();
  EXPECT_TRUE(exec.registry().CheckInvariants(exec.registry().Snapshot())
                  .empty());
  EXPECT_GT(tracer.EventCount(), 0u);
  EXPECT_EQ(tracer.DroppedEvents(), 0u);
  return tracer.ExportChromeJson();
}

TEST(DeterministicReplay, TwoReplaysExportByteIdenticalTraces) {
  const std::string first = ReplayTraceJson();
  const std::string second = ReplayTraceJson();
  EXPECT_EQ(first, second);
  // The trace carries the full job lifecycle, on virtual timestamps.
  EXPECT_NE(first.find("\"name\":\"job.submit\""), std::string::npos);
  EXPECT_NE(first.find("\"name\":\"job.run\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// STATS wire verb + the CI chaos trace artifact
// ---------------------------------------------------------------------------

const crypto::RsaKeyPair& TestKey() {
  static const crypto::RsaKeyPair key = [] {
    bignum::RandomBigUInt rng(0x0b5e7e57);
    return crypto::GenerateRsaKey(512, rng);
  }();
  return key;
}

server::SignRequest MakeSignRequest(std::uint64_t request_id,
                                    const std::string& message) {
  server::SignRequest request;
  request.request_id = request_id;
  request.tenant_id = 1;
  request.key_id = 1;
  request.message.assign(message.begin(), message.end());
  return request;
}

TEST(StatsVerb, RoundTripsMergedRegistrySnapshot) {
  server::Keystore keystore;
  keystore.AddTenant(1, {});
  keystore.AddKey(1, 1, TestKey());
  server::SigningService service(std::move(keystore), {});

  const auto signed_response = service.HandleRequestSync(
      server::EncodeSignRequest(MakeSignRequest(1, "stats round-trip")));
  ASSERT_EQ(signed_response.status, server::StatusCode::kOk);

  server::SignRequest stats;
  stats.type = server::RequestType::kStats;
  stats.request_id = 42;
  const auto response =
      service.HandleRequestSync(server::EncodeSignRequest(stats));
  EXPECT_EQ(response.status, server::StatusCode::kOk);
  EXPECT_EQ(response.request_id, 42u);
  const std::string json(response.payload.begin(), response.payload.end());
  // One merged snapshot: front-end counters and the ExpService's jobs.*
  // both present.
  EXPECT_NE(json.find("\"server.ok\":1"), std::string::npos);
  EXPECT_NE(json.find("\"jobs.completed\""), std::string::npos);
  EXPECT_EQ(service.Snapshot().stats_requests, 1u);
  // Conservation laws only hold on a quiescent snapshot: the sync
  // response can arrive a hair before the worker bumps jobs.completed.
  service.Wait();
  EXPECT_TRUE(service.registry()
                  .CheckInvariants(service.StatsSnapshot())
                  .empty());
}

TEST(ChaosTrace, SeededChaosRunWritesPerfettoArtifact) {
  server::ChaosOptions chaos_options;
  chaos_options.seed = 0xc4a05;
  chaos_options.corrupt_crt_rate = 0.3;
  server::ChaosLayer chaos(chaos_options);

  server::Keystore keystore;
  keystore.AddTenant(1, {});
  keystore.AddKey(1, 1, TestKey());
  Tracer tracer;
  server::SigningService::Options options;
  options.chaos = &chaos;
  options.max_internal_retries = 4;
  options.service.tracer = &tracer;
  server::SigningService service(std::move(keystore), options);

  for (int i = 0; i < 8; ++i) {
    service.HandleRequestSync(server::EncodeSignRequest(
        MakeSignRequest(static_cast<std::uint64_t>(i + 1),
                        "chaos trace " + std::to_string(i))));
  }
  service.Wait();
  EXPECT_GT(tracer.EventCount(), 0u);

  // The artifact CI uploads: a request-lifecycle trace from a seeded
  // chaos run, loadable in ui.perfetto.dev.
  const std::string path = "chaos_seeded.trace.json";
  ASSERT_TRUE(tracer.WriteChromeJson(path));
  std::FILE* file = std::fopen(path.c_str(), "rb");
  ASSERT_NE(file, nullptr);
  char prefix[16] = {};
  const std::size_t read = std::fread(prefix, 1, sizeof(prefix) - 1, file);
  std::fclose(file);
  EXPECT_EQ(std::string(prefix, read).rfind("{\"traceEvents\"", 0), 0u);
  // The chaos run's fault handling shows up in the trace: every caught
  // fault emitted a bellcore.fault event.
  const std::string json = tracer.ExportChromeJson();
  if (service.Snapshot().faults_caught > 0) {
    EXPECT_NE(json.find("\"name\":\"bellcore.fault\""), std::string::npos);
  }
}

}  // namespace
}  // namespace mont::obs
