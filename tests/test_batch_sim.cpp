// Lane-equivalence suite for the 64-lane bit-parallel engine: every lane
// of a BatchSimulator must match a scalar Simulator driven with that
// lane's stimulus net-for-net after every clock edge — over random
// netlists exercising all node kinds, over the generated MMMC circuit,
// and under per-lane fault injection.  Plus the campaign equivalence:
// a lane-parallel fault campaign reports fault-for-fault the same
// FaultCoverage as the sequential one.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <random>
#include <vector>

#include "bignum/biguint.hpp"
#include "core/netlist_gen.hpp"
#include "rtl/batch_sim.hpp"
#include "rtl/compiled.hpp"
#include "rtl/components.hpp"
#include "rtl/fault.hpp"
#include "rtl/netlist.hpp"
#include "rtl/simulator.hpp"
#include "testutil.hpp"
#include "testutil_netlist.hpp"

namespace mont::rtl {
namespace {

using bignum::BigUInt;
constexpr std::size_t kLanes = BatchSimulator::kLanes;

// ---------------------------------------------------------------------------
// Random netlists
// ---------------------------------------------------------------------------

struct RandomNetlist {
  Netlist netlist;
  std::vector<NetId> inputs;
};

/// A random sequential netlist covering every node kind: a pool of inputs
/// and constants, a soup of random gates over earlier nets (acyclic by
/// construction), and DFFs with random enable/reset wired after the fact
/// so state feedback loops occur.
RandomNetlist BuildRandomNetlist(std::mt19937_64& rng, std::size_t n_inputs,
                                 std::size_t n_dffs, std::size_t n_gates) {
  RandomNetlist out;
  Netlist& nl = out.netlist;
  std::vector<NetId> pool = {nl.Const0(), nl.Const1()};
  for (std::size_t i = 0; i < n_inputs; ++i) {
    const NetId id = nl.AddInput(IndexedName("in", i));
    out.inputs.push_back(id);
    pool.push_back(id);
  }
  std::vector<NetId> dffs;
  for (std::size_t i = 0; i < n_dffs; ++i) {
    const NetId id = nl.Dff(nl.Const0());
    dffs.push_back(id);
    pool.push_back(id);
  }
  const auto pick = [&] { return pool[rng() % pool.size()]; };
  for (std::size_t i = 0; i < n_gates; ++i) {
    NetId id = kNoNet;
    switch (rng() % 10) {
      case 0: id = nl.Buf(pick()); break;
      case 1: id = nl.Not(pick()); break;
      case 2: id = nl.And(pick(), pick()); break;
      case 3: id = nl.Or(pick(), pick()); break;
      case 4: id = nl.Xor(pick(), pick()); break;
      case 5: id = nl.Nand(pick(), pick()); break;
      case 6: id = nl.Nor(pick(), pick()); break;
      case 7: id = nl.Xnor(pick(), pick()); break;
      default: id = nl.Mux(pick(), pick(), pick()); break;
    }
    pool.push_back(id);
  }
  for (const NetId dff : dffs) {
    const NetId enable = rng() % 3 == 0 ? pick() : kNoNet;
    const NetId reset = rng() % 4 == 0 ? pick() : kNoNet;
    nl.RewireDff(dff, pick(), enable, reset);
  }
  return out;
}

/// Asserts lane `lane` of `batch` equals `scalar` on every net.
::testing::AssertionResult LaneMatches(const BatchSimulator& batch,
                                       const Simulator& scalar,
                                       const Netlist& nl, std::size_t lane) {
  for (NetId id = 0; id < nl.NodeCount(); ++id) {
    const bool b = ((batch.Peek(id) >> lane) & 1u) != 0;
    const bool s = scalar.Peek(id);
    if (b != s) {
      return ::testing::AssertionFailure()
             << "lane " << lane << " diverged on net " << nl.NetName(id)
             << " (" << OpName(nl.NodeAt(id).op) << "): batch=" << b
             << " scalar=" << s;
    }
  }
  return ::testing::AssertionSuccess();
}

TEST(BatchLaneEquivalence, RandomNetlistsMatchScalarEveryCycleEveryLane) {
  std::mt19937_64 rng(mont::test::TestSeed());
  for (int trial = 0; trial < 4; ++trial) {
    RandomNetlist rn = BuildRandomNetlist(rng, /*n_inputs=*/6, /*n_dffs=*/5,
                                          /*n_gates=*/60);
    SCOPED_TRACE("trial " + std::to_string(trial));
    const CompiledNetlist compiled(rn.netlist);
    BatchSimulator batch(compiled);
    std::vector<std::unique_ptr<Simulator>> scalars;
    for (std::size_t lane = 0; lane < kLanes; ++lane) {
      scalars.push_back(std::make_unique<Simulator>(rn.netlist));
    }
    for (int cycle = 0; cycle < 24; ++cycle) {
      for (const NetId input : rn.inputs) {
        const std::uint64_t word = rng();
        batch.SetInput(input, word);
        for (std::size_t lane = 0; lane < kLanes; ++lane) {
          scalars[lane]->SetInput(input, ((word >> lane) & 1u) != 0);
        }
      }
      // Alternate pure settles and clock edges so both paths are compared.
      if (cycle % 3 == 0) {
        batch.Settle();
        for (auto& s : scalars) s->Settle();
      } else {
        batch.Tick();
        for (auto& s : scalars) s->Tick();
      }
      for (std::size_t lane = 0; lane < kLanes; ++lane) {
        ASSERT_TRUE(LaneMatches(batch, *scalars[lane], rn.netlist, lane))
            << "cycle " << cycle;
      }
    }
  }
}

TEST(BatchLaneEquivalence, MmmcNetlistMatchesScalarNetForNet) {
  const std::size_t l = 6;
  auto brng = mont::test::TestRng();
  const BigUInt n = brng.OddExactBits(l);
  const BigUInt two_n = n << 1;
  const auto gen = core::BuildMmmcNetlist(l);

  std::vector<BigUInt> xs, ys;
  for (std::size_t lane = 0; lane < kLanes; ++lane) {
    xs.push_back(brng.Below(two_n));
    ys.push_back(brng.Below(two_n));
  }

  // Batch: all 64 operand pairs at once.
  mont::test::BatchMmmcNetlistDriver batch_drv(gen);
  batch_drv.LoadModulus(n);
  // Scalar: one simulator per lane, identical schedule.
  std::vector<std::unique_ptr<Simulator>> scalars;
  std::vector<std::unique_ptr<mont::test::MmmcNetlistDriver>> drivers;
  for (std::size_t lane = 0; lane < kLanes; ++lane) {
    scalars.push_back(std::make_unique<Simulator>(*gen.netlist));
    drivers.push_back(
        std::make_unique<mont::test::MmmcNetlistDriver>(gen, *scalars[lane]));
    drivers[lane]->LoadModulus(n);
    mont::test::SetBus(*scalars[lane], gen.x_in, xs[lane]);
    mont::test::SetBus(*scalars[lane], gen.y_in, ys[lane]);
    scalars[lane]->SetInput(gen.start, true);
    scalars[lane]->Tick();
    scalars[lane]->SetInput(gen.start, false);
  }
  batch_drv.Start(xs, ys);

  for (std::uint64_t cycle = 1; cycle <= 3 * l + 5; ++cycle) {
    for (std::size_t lane = 0; lane < kLanes; ++lane) {
      ASSERT_TRUE(
          LaneMatches(batch_drv.sim(), *scalars[lane], *gen.netlist, lane))
          << "cycle " << cycle;
    }
    batch_drv.Tick();
    for (auto& s : scalars) s->Tick();
  }
}

// ---------------------------------------------------------------------------
// Per-lane faults
// ---------------------------------------------------------------------------

TEST(BatchFaults, LanesAreIsolated) {
  Netlist nl;
  const NetId a = nl.AddInput("a");
  const NetId b = nl.AddInput("b");
  const NetId g = nl.And(a, b);
  const NetId out = nl.Or(g, nl.Const0());
  BatchSimulator sim(nl);
  sim.SetInputAll(a, true);
  sim.SetInputAll(b, true);
  sim.InjectFault(g, FaultType::kStuckAt0, 1ull << 3);
  sim.InjectFault(g, FaultType::kInvert, 1ull << 7);  // 1 -> 0 as well
  sim.Settle();
  EXPECT_EQ(sim.Peek(out), ~((1ull << 3) | (1ull << 7)))
      << "only the faulted lanes may observe the fault";
  sim.ClearFaults();
  sim.Settle();
  EXPECT_EQ(sim.Peek(out), BatchSimulator::kAllLanes);
}

TEST(BatchFaults, LastFaultPerLaneWins) {
  Netlist nl;
  const NetId a = nl.AddInput("a");
  const NetId buf = nl.Buf(a);
  BatchSimulator sim(nl);
  sim.SetInputAll(a, false);
  sim.InjectFault(buf, FaultType::kStuckAt0);                  // all lanes
  sim.InjectFault(buf, FaultType::kStuckAt1, 1ull << 5);      // retarget lane
  EXPECT_EQ(sim.Peek(buf), 1ull << 5);
  EXPECT_EQ(sim.ActiveFaults(), 1u) << "same net, one entry";
}

TEST(BatchFaults, FaultedDffStateMatchesScalarPerLane) {
  // q <= NOT q toggler with a stuck-at fault on the DFF in one lane only.
  Netlist nl;
  const NetId dff = nl.Dff(nl.Const0());
  const NetId inv = nl.Not(dff);
  nl.RewireDff(dff, inv);
  BatchSimulator batch(nl);
  Simulator healthy(nl), faulty(nl);
  batch.InjectFault(dff, FaultType::kStuckAt1, 1ull << 9);
  faulty.InjectFault(dff, FaultType::kStuckAt1);
  for (int cycle = 0; cycle < 6; ++cycle) {
    EXPECT_EQ(batch.PeekLane(dff, 0), healthy.Peek(dff)) << "cycle " << cycle;
    EXPECT_EQ(batch.PeekLane(dff, 9), faulty.Peek(dff)) << "cycle " << cycle;
    batch.Tick();
    healthy.Tick();
    faulty.Tick();
  }
}

// ---------------------------------------------------------------------------
// Campaign equivalence: lane-parallel == sequential, fault for fault
// ---------------------------------------------------------------------------

void ExpectSameCoverage(const FaultCoverage& sequential,
                        const FaultCoverage& batch) {
  EXPECT_EQ(sequential.injected, batch.injected);
  EXPECT_EQ(sequential.detected, batch.detected);
  ASSERT_EQ(sequential.results.size(), batch.results.size());
  for (std::size_t i = 0; i < sequential.results.size(); ++i) {
    EXPECT_EQ(sequential.results[i].net, batch.results[i].net) << i;
    EXPECT_EQ(sequential.results[i].type, batch.results[i].type) << i;
    EXPECT_EQ(sequential.results[i].detected, batch.results[i].detected)
        << "fault " << i << ": net " << sequential.results[i].net << " "
        << FaultTypeName(sequential.results[i].type);
  }
}

TEST(BatchCampaign, AdderCampaignMatchesSequential) {
  Netlist nl;
  const Bus a = InputBus(nl, "a", 4);
  const Bus b = InputBus(nl, "b", 4);
  const Bus sum = RippleCarryAdder(nl, a, b);
  // Every net in the circuit, all three fault models.
  std::vector<NetId> targets;
  for (NetId id = 0; id < nl.NodeCount(); ++id) targets.push_back(id);
  const std::vector<FaultType> types = {
      FaultType::kStuckAt0, FaultType::kStuckAt1, FaultType::kInvert};

  const auto scalar_workload = [&](Simulator& sim) {
    for (std::uint64_t va = 0; va < 16; ++va) {
      for (std::uint64_t vb = 0; vb < 16; ++vb) {
        mont::test::SetBus(sim, a, va);
        mont::test::SetBus(sim, b, vb);
        sim.Settle();
        if (sim.PeekBus(sum) != va + vb) return true;
      }
    }
    return false;
  };
  const auto batch_workload = [&](BatchSimulator& sim) {
    std::uint64_t detected = 0;
    for (std::uint64_t va = 0; va < 16; ++va) {
      for (std::uint64_t vb = 0; vb < 16; ++vb) {
        for (std::size_t i = 0; i < 4; ++i) {
          sim.SetInputAll(a[i], ((va >> i) & 1u) != 0);
          sim.SetInputAll(b[i], ((vb >> i) & 1u) != 0);
        }
        sim.Settle();
        // A lane detects the fault if any sum bit is wrong in that lane.
        for (std::size_t i = 0; i < sum.size(); ++i) {
          const std::uint64_t expect_bit =
              (((va + vb) >> i) & 1u) != 0 ? BatchSimulator::kAllLanes : 0;
          detected |= sim.Peek(sum[i]) ^ expect_bit;
        }
      }
    }
    return detected;
  };

  ExpectSameCoverage(RunFaultCampaign(nl, targets, types, scalar_workload),
                     RunFaultCampaignBatch(nl, targets, types, batch_workload));
}

TEST(BatchCampaign, MmmcCampaignMatchesSequential) {
  const std::size_t l = 4;
  auto brng = mont::test::TestRng();
  const BigUInt n = brng.OddExactBits(l);
  const BigUInt two_n = n << 1;
  const BigUInt x = brng.Below(two_n), y = brng.Below(two_n);
  const auto gen = core::BuildMmmcNetlist(l);

  // Fault-free expectation, from the very engine under test.
  mont::test::MmmcNetlistDriver golden(gen);
  golden.LoadModulus(n);
  BigUInt expect;
  ASSERT_TRUE(golden.TryMultiply(x, y, &expect));

  const std::uint64_t kMaxCycles = 8 * (l + 4);
  const auto scalar_workload = [&](Simulator& sim) {
    mont::test::MmmcNetlistDriver drv(gen, sim);
    drv.LoadModulus(n);
    BigUInt got;
    std::uint64_t cycles = 0;
    if (!drv.TryMultiply(x, y, &got, &cycles, kMaxCycles)) return true;
    if (cycles != 3 * l + 4) return true;
    return got != expect;
  };
  const auto batch_workload = [&](BatchSimulator& sim) {
    return mont::test::DetectMmmcFaultLanes(sim, gen, n, x, y, expect,
                                            kMaxCycles);
  };

  // Deterministic sample of the netlist, all three models.
  std::vector<NetId> targets;
  for (NetId id = 2; id < gen.netlist->NodeCount(); id += 3) {
    targets.push_back(id);
  }
  const std::vector<FaultType> types = {
      FaultType::kStuckAt0, FaultType::kStuckAt1, FaultType::kInvert};
  const FaultCoverage sequential =
      RunFaultCampaign(*gen.netlist, targets, types, scalar_workload);
  const FaultCoverage batch =
      RunFaultCampaignBatch(*gen.netlist, targets, types, batch_workload);
  ExpectSameCoverage(sequential, batch);
  EXPECT_GT(batch.injected, 100u);
}

// ---------------------------------------------------------------------------
// Wide/bus peeks and argument checking
// ---------------------------------------------------------------------------

TEST(BatchSim, PeekBusRejectsWideBusesAndBadLanes) {
  Netlist nl;
  const Bus wide = InputBus(nl, "w", 65);
  BatchSimulator sim(nl);
  EXPECT_THROW(sim.PeekBus(wide, 0), std::invalid_argument);
  EXPECT_THROW(sim.PeekBus({wide[0]}, kLanes), std::out_of_range);
  EXPECT_THROW(sim.SetInputLane(wide[0], kLanes, true), std::out_of_range);
  EXPECT_NO_THROW(sim.PeekWide(wide, 0));
}

TEST(BatchSim, PeekWideRoundTripsWideValues) {
  auto brng = mont::test::TestRng();
  Netlist nl;
  const Bus in = InputBus(nl, "w", 100);
  Bus regs;
  for (const NetId net : in) regs.push_back(nl.Dff(net));
  BatchSimulator sim(nl);
  std::vector<BigUInt> values;
  for (std::size_t lane = 0; lane < kLanes; ++lane) {
    values.push_back(brng.ExactBits(100));
    mont::test::SetBusLane(sim, in, lane, values[lane]);
  }
  sim.Tick();
  for (std::size_t lane = 0; lane < kLanes; ++lane) {
    EXPECT_EQ(sim.PeekWide(regs, lane), values[lane]) << "lane " << lane;
    EXPECT_EQ(sim.PeekWide(in, lane), values[lane]) << "lane " << lane;
  }
}

TEST(BatchSim, BatchDriverRejectsBadOperandCounts) {
  const auto gen = core::BuildMmmcNetlist(2);
  mont::test::BatchMmmcNetlistDriver drv(gen);
  const std::vector<BigUInt> pair(2, BigUInt{1});
  const std::vector<BigUInt> too_many(kLanes + 1, BigUInt{1});
  EXPECT_THROW(drv.Start(too_many, too_many), std::invalid_argument);
  EXPECT_THROW(drv.Start(pair, {BigUInt{1}}), std::invalid_argument);
}

TEST(BatchSim, SetInputRejectsNonInputs) {
  Netlist nl;
  const NetId a = nl.AddInput("a");
  const NetId g = nl.Not(a);
  BatchSimulator sim(nl);
  EXPECT_THROW(sim.SetInput(g, 1), std::logic_error);
  EXPECT_THROW(sim.InjectFault(12345, FaultType::kStuckAt0),
               std::out_of_range);
}

// The settle-skip optimisation must not change observable behaviour: held
// inputs and unchanging state produce identical values, and re-driving an
// input with the same word is still reflected after new edges.
TEST(BatchSim, SettleSkipPreservesSemantics) {
  Netlist nl;
  const NetId d = nl.AddInput("d");
  const NetId en = nl.AddInput("en");
  const NetId q = nl.Dff(d, en);
  const NetId out = nl.Xor(q, d);
  BatchSimulator sim(nl);
  sim.SetInputAll(d, true);
  sim.SetInputAll(en, false);
  for (int i = 0; i < 3; ++i) {
    sim.Tick();  // q holds 0; the extra settles are skipped
    EXPECT_EQ(sim.Peek(q), 0u);
    EXPECT_EQ(sim.Peek(out), BatchSimulator::kAllLanes);
  }
  sim.SetInputAll(en, true);
  sim.Tick();
  EXPECT_EQ(sim.Peek(q), BatchSimulator::kAllLanes);
  EXPECT_EQ(sim.Peek(out), 0u);
}

}  // namespace
}  // namespace mont::rtl
