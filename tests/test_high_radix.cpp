// Tests for the radix-2^alpha Montgomery multiplier: functional agreement
// with the radix-2 reference across radices, Walter-bound closure, the
// cycle trade-off, and end-to-end exponentiation.
#include <gtest/gtest.h>

#include "bignum/montgomery.hpp"
#include "bignum/random.hpp"
#include "core/high_radix.hpp"
#include "core/schedule.hpp"
#include "testutil.hpp"

namespace mont::core {
namespace {

using bignum::BigUInt;
using bignum::RandomBigUInt;

TEST(HighRadix, RejectsBadParameters) {
  EXPECT_THROW(HighRadixMultiplier(BigUInt{8}, 4), std::invalid_argument);
  EXPECT_THROW(HighRadixMultiplier(BigUInt{17}, 0), std::invalid_argument);
  EXPECT_THROW(HighRadixMultiplier(BigUInt{17}, 33), std::invalid_argument);
}

TEST(HighRadix, AlphaOneIsAlgorithmTwo) {
  auto rng = test::TestRng();
  const BigUInt n = rng.OddExactBits(48);
  HighRadixMultiplier radix2(n, 1);
  bignum::BitSerialMontgomery reference(n);
  EXPECT_EQ(radix2.R(), reference.R());
  EXPECT_EQ(radix2.NPrime(), 1u) << "N' = 1 for alpha = 1 and odd N";
  const BigUInt two_n = n << 1;
  for (int trial = 0; trial < 10; ++trial) {
    const BigUInt x = rng.Below(two_n), y = rng.Below(two_n);
    EXPECT_EQ(radix2.Multiply(x, y), reference.MultiplyAlg2(x, y));
  }
}

class RadixSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RadixSweep, MatchesDefinitionAndStaysChainable) {
  const std::size_t alpha = GetParam();
  auto rng = test::TestRng();
  for (const std::size_t bits : {16u, 64u, 128u, 521u}) {
    const BigUInt n = rng.OddExactBits(bits);
    HighRadixMultiplier mul(n, alpha);
    const BigUInt r = mul.R();
    EXPECT_TRUE((n << 2) < r) << "Walter bound must hold";
    const BigUInt two_n = n << 1;
    BigUInt chained = rng.Below(two_n);
    for (int trial = 0; trial < 6; ++trial) {
      const BigUInt x = rng.Below(two_n), y = rng.Below(two_n);
      const BigUInt got = mul.Multiply(x, y);
      EXPECT_TRUE(test::IsChainableMontProduct(got, x, y, n, r))
          << "alpha=" << alpha << " bits=" << bits;
      chained = mul.Multiply(chained, got);  // outputs feed back
      ASSERT_LT(chained, two_n);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Radices, RadixSweep,
                         ::testing::Values(2, 3, 4, 8, 16, 32));

TEST(HighRadix, NPrimeSatisfiesDefinition) {
  auto rng = test::TestRng();
  for (const std::size_t alpha : {4u, 8u, 16u}) {
    const BigUInt n = rng.OddExactBits(64);
    HighRadixMultiplier mul(n, alpha);
    const std::uint64_t mask = (1ull << alpha) - 1;
    const std::uint64_t n0 = n.ToUint64() & mask;
    EXPECT_EQ((n0 * mul.NPrime()) & mask, mask)
        << "N * N' = -1 mod 2^alpha";
  }
}

TEST(HighRadix, IterationCountShrinksWithRadix) {
  auto rng = test::TestRng();
  const BigUInt n = rng.OddExactBits(1024);
  const HighRadixMultiplier r2(n, 1);
  const HighRadixMultiplier r16(n, 4);
  const HighRadixMultiplier r256(n, 8);
  EXPECT_EQ(r2.Iterations(), 1026u);
  EXPECT_EQ(r16.Iterations(), (1026u + 3) / 4);
  EXPECT_EQ(r256.Iterations(), (1026u + 7) / 8);
  EXPECT_LT(r256.MultiplyCycles(), r16.MultiplyCycles());
  EXPECT_LT(r16.MultiplyCycles(), r2.MultiplyCycles());
  // Radix-2 cycle model degenerates to the paper's 3l+4 (2s + w + 2 with
  // s = l+2, w = l+1 gives 3l+7; the MMMC's tighter capture saves the
  // difference — both are Theta(3l)).
  EXPECT_NEAR(static_cast<double>(r2.MultiplyCycles()),
              static_cast<double>(MultiplyCycles(1024)), 4.0);
}

TEST(HighRadix, ModExpMatchesReference) {
  auto rng = test::TestRng();
  const BigUInt n = rng.OddExactBits(128);
  for (const std::size_t alpha : {4u, 8u, 16u}) {
    HighRadixMultiplier mul(n, alpha);
    for (int trial = 0; trial < 3; ++trial) {
      const BigUInt base = rng.Below(n);
      const BigUInt e = rng.ExactBits(64);
      EXPECT_EQ(mul.ModExp(base, e), BigUInt::ModExp(base, e, n))
          << "alpha=" << alpha;
    }
  }
}

}  // namespace
}  // namespace mont::core
