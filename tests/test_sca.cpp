// Tests for the side-channel analysis module: the timing oracle separates
// Algorithm 1 (data-dependent subtraction) from Algorithm 2 (constant
// time), the power-trace proxy behaves like a Hamming-distance model, and
// the statistics helpers are correct.
//
// Since the side-channel lab landed, PowerTrace is measured at gate level
// (sca/trace.hpp routes it through GateLevelCapture over the generated
// netlist's datapath registers), so every check in this file runs on real
// netlist toggles; the former software register replay survives as
// ModelRegisterTrace, tested against the routed proxy below.
#include <gtest/gtest.h>

#include <vector>

#include "bignum/random.hpp"
#include "sca/analysis.hpp"
#include "sca/trace.hpp"
#include "testutil.hpp"

namespace mont::sca {
namespace {

using bignum::BigUInt;
using bignum::RandomBigUInt;

TEST(Stats, SummarizeKnownValues) {
  const std::vector<double> samples{2, 4, 4, 4, 5, 5, 7, 9};
  const SampleStats stats = Summarize(samples);
  EXPECT_DOUBLE_EQ(stats.mean, 5.0);
  EXPECT_NEAR(stats.variance, 32.0 / 7.0, 1e-12);
  EXPECT_EQ(stats.count, 8u);
}

TEST(Stats, SummarizeDegenerateCases) {
  EXPECT_EQ(Summarize({}).count, 0u);
  const std::vector<double> one{42};
  EXPECT_DOUBLE_EQ(Summarize(one).mean, 42.0);
  EXPECT_DOUBLE_EQ(Summarize(one).variance, 0.0);
}

TEST(Stats, WelchTSeparatesShiftedPopulations) {
  std::vector<double> a, b;
  auto rng = test::TestRng();
  for (int i = 0; i < 200; ++i) {
    a.push_back(static_cast<double>(rng.Engine().NextBelow(100)));
    b.push_back(static_cast<double>(rng.Engine().NextBelow(100)) + 50.0);
  }
  EXPECT_GT(std::abs(WelchT(b, a)), 4.5) << "clearly shifted -> leakage";
  EXPECT_LT(std::abs(WelchT(a, a)), 1e-9) << "same data -> no signal";
}

TEST(TimingOracle, Alg2IsConstantTime) {
  auto rng = test::TestRng();
  const BigUInt n = rng.OddExactBits(32);
  const TimingOracle oracle(n);
  EXPECT_EQ(oracle.Alg2Cycles(), 3u * 32 + 4);
  // And the cycle-accurate circuit confirms: same count for every input.
  core::Mmmc circuit(n);
  const BigUInt two_n = n << 1;
  for (int trial = 0; trial < 10; ++trial) {
    std::uint64_t cycles = 0;
    circuit.Multiply(rng.Below(two_n), rng.Below(two_n), &cycles);
    EXPECT_EQ(cycles, oracle.Alg2Cycles());
  }
}

TEST(TimingOracle, Alg1LeaksTheSubtractionBit) {
  auto rng = test::TestRng();
  const BigUInt n = rng.OddExactBits(48);
  const TimingOracle oracle(n);
  bool saw_taken = false, saw_not_taken = false;
  for (int trial = 0; trial < 200 && !(saw_taken && saw_not_taken); ++trial) {
    const BigUInt x = rng.Below(n);
    const BigUInt y = rng.Below(n);
    const bool taken = oracle.Alg1SubtractionTaken(x, y);
    const std::uint64_t cycles = oracle.Alg1Cycles(x, y);
    if (taken) {
      saw_taken = true;
      EXPECT_EQ(cycles, oracle.Alg2Cycles() + 1 + 48 + 1);
    } else {
      saw_not_taken = true;
      EXPECT_EQ(cycles, oracle.Alg2Cycles() + 1);
    }
  }
  EXPECT_TRUE(saw_taken) << "subtraction case must occur for random inputs";
  EXPECT_TRUE(saw_not_taken);
}

TEST(PowerTrace, LengthMatchesMultiplicationAndZeroInputIsQuiet) {
  const BigUInt n{1000003};
  core::Mmmc circuit(n);
  const auto trace = PowerTrace(circuit, BigUInt{123456}, BigUInt{654321});
  EXPECT_EQ(trace.size(), 3u * circuit.l() + 3) << "one sample per compute "
                                                   "cycle + OUT";
  // Multiplying zero by zero keeps the datapath registers at zero: the
  // Hamming-distance trace must be silent.
  const auto quiet = PowerTrace(circuit, BigUInt{0}, BigUInt{0});
  std::uint64_t total = 0;
  for (const auto v : quiet) total += v;
  EXPECT_EQ(total, 0u);
}

TEST(PowerTrace, DataDependentActivity) {
  const BigUInt n{1000003};
  core::Mmmc circuit(n);
  const auto dense =
      PowerTrace(circuit, BigUInt{999999}, BigUInt{888888});
  const auto sparse = PowerTrace(circuit, BigUInt{1}, BigUInt{1});
  std::uint64_t dense_total = 0, sparse_total = 0;
  for (const auto v : dense) dense_total += v;
  for (const auto v : sparse) sparse_total += v;
  EXPECT_GT(dense_total, sparse_total)
      << "heavier operands must switch more registers";
}

// The routed proxy is the gate-level datapath capture minus the load-edge
// sample, and the behavioural-model replay (the CPA engine's predictor)
// matches it register for register — the Eq. 4–9 lockstep seen through
// the power model.
TEST(PowerTrace, MatchesGateLevelDatapathCaptureAndModelReplay) {
  auto rng = test::TestRng();
  const BigUInt n = rng.OddExactBits(18);
  const BigUInt two_n = n << 1;
  core::Mmmc circuit(n);
  const BigUInt x = rng.Below(two_n);
  const BigUInt y = rng.Below(two_n);
  const auto routed = PowerTrace(circuit, x, y);

  CaptureOptions options;
  options.datapath_only = true;
  GateLevelCapture capture(n, options);
  const std::vector<BigUInt> xs{x}, ys{y};
  const TraceSet set = capture.CaptureMultiplications(xs, ys);
  ASSERT_EQ(routed.size() + 1, set.Samples());
  for (std::size_t s = 1; s < set.Samples(); ++s) {
    EXPECT_DOUBLE_EQ(static_cast<double>(routed[s - 1]), set.At(0, s));
  }

  const auto predicted = ModelRegisterTrace(circuit, x, y);
  ASSERT_EQ(predicted.size(), routed.size());
  EXPECT_EQ(predicted, routed)
      << "software register replay == netlist register toggles";
}

// secret_cone_only restricts the power model to the nets the static taint
// pass (analysis/) proves key-dependent: a strict subset of the circuit
// that still switches every cycle the datapath is active.
TEST(PowerTrace, SecretConeCaptureTracksAStrictSubset) {
  const BigUInt n{65537};
  CaptureOptions full;
  GateLevelCapture all_nets(n, full);
  CaptureOptions cone;
  cone.secret_cone_only = true;
  GateLevelCapture secret_cone(n, cone);
  EXPECT_GT(secret_cone.TrackedNetCount(), 0u);
  EXPECT_LT(secret_cone.TrackedNetCount(), all_nets.TrackedNetCount());

  const std::vector<BigUInt> xs{BigUInt{12345}}, ys{BigUInt{54321}};
  const TraceSet cone_set = secret_cone.CaptureMultiplications(xs, ys);
  const TraceSet full_set = all_nets.CaptureMultiplications(xs, ys);
  ASSERT_EQ(cone_set.Samples(), full_set.Samples());
  // Every cone sample is part of the corresponding full sample, and the
  // cone carries real activity of its own.
  double cone_total = 0;
  for (std::size_t s = 0; s < cone_set.Samples(); ++s) {
    EXPECT_LE(cone_set.At(0, s), full_set.At(0, s)) << "sample " << s;
    cone_total += cone_set.At(0, s);
  }
  EXPECT_GT(cone_total, 0.0);

  CaptureOptions both;
  both.datapath_only = true;
  both.secret_cone_only = true;
  EXPECT_THROW(GateLevelCapture(n, both), std::invalid_argument);
}

TEST(PowerTrace, DeterministicForSameInputs) {
  const BigUInt n{65537};
  core::Mmmc circuit(n);
  const auto a = PowerTrace(circuit, BigUInt{12345}, BigUInt{54321});
  const auto b = PowerTrace(circuit, BigUInt{12345}, BigUInt{54321});
  EXPECT_EQ(a, b);
}

// TVLA-style check: fixed-vs-random traces distinguish operand classes on
// the unprotected datapath (there is real data-dependent leakage to find),
// while the *timing* channel of the MMMC shows nothing.
TEST(PowerTrace, FixedVsRandomTvla) {
  auto rng = test::TestRng();
  const BigUInt n = rng.OddExactBits(24);
  const BigUInt two_n = n << 1;
  core::Mmmc circuit(n);
  const BigUInt fixed = rng.Below(two_n);
  std::vector<double> fixed_power, random_power;
  for (int trial = 0; trial < 40; ++trial) {
    const BigUInt y = rng.Below(two_n);
    const auto f = PowerTrace(circuit, fixed, fixed);
    const auto r = PowerTrace(circuit, rng.Below(two_n), y);
    double fs = 0, rs = 0;
    for (const auto v : f) fs += v;
    for (const auto v : r) rs += v;
    fixed_power.push_back(fs);
    random_power.push_back(rs);
  }
  // Power side: fixed-input traces are identical (variance 0), random ones
  // vary — the distinguisher fires.
  EXPECT_DOUBLE_EQ(Summarize(fixed_power).variance, 0.0);
  EXPECT_GT(Summarize(random_power).variance, 0.0);
}

}  // namespace
}  // namespace mont::sca
