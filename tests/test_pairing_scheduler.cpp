// Tests for the service scheduling structures in isolation (no threads):
// PairingQueue queue-order / pairing / starvation semantics and the
// LruCache eviction policy behind the per-modulus engine cache.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "core/schedule.hpp"
#include "testutil.hpp"

namespace mont::core {
namespace {

TEST(PairingQueue, FifoWithoutPairing) {
  PairingQueue queue;
  for (std::uint64_t id = 1; id <= 5; ++id) queue.Push(id, /*key=*/7);
  for (std::uint64_t id = 1; id <= 5; ++id) {
    const auto issue = queue.Pop(/*allow_pairing=*/false);
    ASSERT_TRUE(issue.has_value());
    EXPECT_EQ(issue->count, 1u);
    EXPECT_EQ(issue->ids[0], id);
  }
  EXPECT_FALSE(queue.Pop().has_value());
}

TEST(PairingQueue, PairsOldestCompatibleEntries) {
  PairingQueue queue;
  // keys: A B A B  ->  (1,3) then (2,4)
  queue.Push(1, 64);
  queue.Push(2, 32);
  queue.Push(3, 64);
  queue.Push(4, 32);
  auto first = queue.Pop();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->count, 2u);
  EXPECT_EQ(first->ids[0], 1u);
  EXPECT_EQ(first->ids[1], 3u);
  auto second = queue.Pop();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->count, 2u);
  EXPECT_EQ(second->ids[0], 2u);
  EXPECT_EQ(second->ids[1], 4u);
  EXPECT_TRUE(queue.Empty());
}

TEST(PairingQueue, OddJobOutAndLoneKeysDoNotStarve) {
  PairingQueue queue;
  // Three same-key entries: one must issue alone after the pair.
  queue.Push(1, 8);
  queue.Push(2, 8);
  queue.Push(3, 8);
  auto pair = queue.Pop();
  ASSERT_TRUE(pair.has_value());
  EXPECT_EQ(pair->count, 2u);
  auto leftover = queue.Pop();
  ASSERT_TRUE(leftover.has_value());
  EXPECT_EQ(leftover->count, 1u);
  EXPECT_EQ(leftover->ids[0], 3u);
  // Entries with unmatched keys each issue alone, in FIFO order.
  queue.Push(4, 10);
  queue.Push(5, 11);
  EXPECT_EQ(queue.Pop()->ids[0], 4u);
  EXPECT_EQ(queue.Pop()->ids[0], 5u);
}

TEST(PairingQueue, BondedEntriesOnlyPairWithTheirPartner) {
  PairingQueue queue;
  const std::uint64_t bond = (std::uint64_t{1} << 63) | 0;
  queue.Push(1, 64);                    // opportunistic
  queue.Push(2, bond, /*bonded=*/true);  // bonded half 1
  queue.Push(3, 64);                    // opportunistic
  queue.Push(4, bond, /*bonded=*/true);  // bonded half 2
  auto first = queue.Pop();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->ids[0], 1u);
  EXPECT_EQ(first->ids[1], 3u);  // skipped the bonded entry in between
  EXPECT_FALSE(first->bonded);
  auto second = queue.Pop();
  ASSERT_TRUE(second.has_value());
  EXPECT_TRUE(second->bonded);
  EXPECT_EQ(second->ids[0], 2u);
  EXPECT_EQ(second->ids[1], 4u);
}

TEST(PairingQueue, BondedAndOpportunisticNeverMixOnSameKey) {
  PairingQueue queue;
  queue.Push(1, 64, /*bonded=*/true);
  queue.Push(2, 64, /*bonded=*/false);
  auto first = queue.Pop();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->count, 1u);  // bonded front cannot claim the plain entry
  auto second = queue.Pop();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->count, 1u);
}

// Property check: every id issues exactly once, pairs always share a key,
// and the first slot of successive issues preserves FIFO order.
TEST(PairingQueue, RandomizedConservationAndOrder) {
  auto rng = test::TestRng();
  PairingQueue queue;
  constexpr std::uint64_t kEntries = 500;
  std::map<std::uint64_t, std::uint64_t> key_of;
  for (std::uint64_t id = 1; id <= kEntries; ++id) {
    const std::uint64_t key = rng.Engine().NextBelow(5);
    key_of[id] = key;
    queue.Push(id, key);
  }
  std::set<std::uint64_t> seen;
  std::uint64_t last_front = 0;
  while (auto issue = queue.Pop()) {
    EXPECT_GT(issue->ids[0], last_front) << "FIFO order of issue fronts";
    last_front = issue->ids[0];
    for (std::size_t i = 0; i < issue->count; ++i) {
      EXPECT_TRUE(seen.insert(issue->ids[i]).second)
          << "id issued twice: " << issue->ids[i];
    }
    if (issue->count == 2) {
      EXPECT_EQ(key_of[issue->ids[0]], key_of[issue->ids[1]]);
    }
  }
  EXPECT_EQ(seen.size(), kEntries);
}

// ---------------------------------------------------------------------------
// Clock sources
// ---------------------------------------------------------------------------

TEST(ClockSource, ManualClockAdvancesAndRejectsBackwardsSet) {
  ManualClock clock(100);
  EXPECT_EQ(clock.Now(), 100u);
  clock.Advance(50);
  EXPECT_EQ(clock.Now(), 150u);
  clock.Set(150);  // no-op jump to the same tick is fine
  clock.Set(400);
  EXPECT_EQ(clock.Now(), 400u);
  EXPECT_THROW(clock.Set(399), std::invalid_argument);
}

TEST(ClockSource, SteadyClockIsMonotone) {
  SteadyClock clock;
  const std::uint64_t a = clock.Now();
  const std::uint64_t b = clock.Now();
  EXPECT_LE(a, b);
}

// ---------------------------------------------------------------------------
// StealScheduler (v2: per-worker deques, stealing, hold/unpair, batching)
// ---------------------------------------------------------------------------

StealScheduler::Config TwoWorkerConfig() {
  StealScheduler::Config config;
  config.workers = 2;
  config.unpair_timeout = 100;
  return config;
}

TEST(StealScheduler, SoloSubmitOnIdlePoolDispatchesImmediately) {
  StealScheduler sched(TwoWorkerConfig());
  // Even a key with hot traffic must not be held while the pool has
  // nothing else to do — holding then would only add latency.
  sched.Submit(1, 7, /*pairable=*/true, /*now=*/0);
  EXPECT_EQ(sched.HeldJobs(), 0u);
  auto issue = sched.Acquire(0, 0);
  ASSERT_TRUE(issue.has_value());
  EXPECT_EQ(issue->count, 1u);
  EXPECT_EQ(issue->ids[0], 1u);
  sched.OnGroupDone();
  EXPECT_TRUE(sched.Idle());
}

TEST(StealScheduler, OpenSoloGroupUpgradesToPairInPlace) {
  StealScheduler sched(TwoWorkerConfig());
  sched.Submit(1, 7, true, 0);
  sched.Submit(2, 7, true, 10);  // joins id 1's un-acquired solo group
  auto issue = sched.Acquire(0, 10);
  ASSERT_TRUE(issue.has_value());
  EXPECT_EQ(issue->count, 2u);
  EXPECT_EQ(issue->ids[0], 1u);
  EXPECT_EQ(issue->ids[1], 2u);
  EXPECT_EQ(sched.GetStats().pairs_formed, 1u);
  sched.OnGroupDone();
  EXPECT_TRUE(sched.Idle());
}

TEST(StealScheduler, HotKeyHoldsForPartnerWhilePoolBusy) {
  StealScheduler sched(TwoWorkerConfig());
  // Establish a hot gap on key 7, then keep the pool busy so the next
  // lone arrival is worth holding.
  sched.Submit(1, 7, true, 0);
  sched.Submit(2, 7, true, 10);  // gap 10 << timeout 100: key is hot
  auto pair = sched.Acquire(0, 10);
  ASSERT_TRUE(pair.has_value());  // in flight: pool is busy
  sched.Submit(3, 7, true, 20);
  EXPECT_EQ(sched.HeldJobs(), 1u);
  EXPECT_EQ(sched.GetStats().holds, 1u);
  ASSERT_TRUE(sched.NextHoldDeadline().has_value());
  EXPECT_EQ(*sched.NextHoldDeadline(), 120u);
  // Held jobs are invisible to Acquire before their deadline.
  EXPECT_FALSE(sched.Acquire(1, 30).has_value());
  // The partner arrives in time: hold pays off.
  sched.Submit(4, 7, true, 40);
  EXPECT_EQ(sched.HeldJobs(), 0u);
  auto held_pair = sched.Acquire(1, 40);
  ASSERT_TRUE(held_pair.has_value());
  EXPECT_EQ(held_pair->count, 2u);
  EXPECT_EQ(held_pair->ids[0], 3u);
  EXPECT_EQ(held_pair->ids[1], 4u);
  EXPECT_EQ(sched.GetStats().hold_pairs, 1u);
  sched.OnGroupDone();
  sched.OnGroupDone();
  EXPECT_TRUE(sched.Idle());
}

TEST(StealScheduler, AgeTimeoutReleasesHeldJobSolo) {
  StealScheduler sched(TwoWorkerConfig());
  sched.Submit(1, 7, true, 0);
  sched.Submit(2, 7, true, 10);
  auto pair = sched.Acquire(0, 10);
  ASSERT_TRUE(pair.has_value());
  sched.Submit(3, 7, true, 20);
  ASSERT_EQ(sched.HeldJobs(), 1u);
  // Deadline is 120; at 119 the job is still held, at 120 it issues
  // solo and is flagged as unpaired by the timeout.
  EXPECT_FALSE(sched.Acquire(1, 119).has_value());
  auto solo = sched.Acquire(1, 120);
  ASSERT_TRUE(solo.has_value());
  EXPECT_EQ(solo->count, 1u);
  EXPECT_EQ(solo->ids[0], 3u);
  EXPECT_TRUE(solo->unpaired_by_timeout);
  EXPECT_EQ(sched.GetStats().unpair_timeouts, 1u);
  sched.OnGroupDone();
  sched.OnGroupDone();
  EXPECT_TRUE(sched.Idle());
}

TEST(StealScheduler, StealTakesVictimsOldestGroupInRingOrder) {
  StealScheduler::Config config = TwoWorkerConfig();
  config.workers = 3;
  StealScheduler sched(config);
  // Distinct non-pairable jobs spread across deques (least-loaded with
  // round-robin tie-break: ids 1,2,3 land on workers 0,1,2).
  sched.Submit(1, 100, /*pairable=*/false, 0);
  sched.Submit(2, 101, /*pairable=*/false, 1);
  sched.Submit(3, 102, /*pairable=*/false, 2);
  // Worker 1 drains its own deque first...
  auto own = sched.Acquire(1, 10);
  ASSERT_TRUE(own.has_value());
  EXPECT_FALSE(own->stolen);
  EXPECT_EQ(own->ids[0], 2u);
  // ...then steals in ring order from worker 2 before worker 0.
  auto stolen = sched.Acquire(1, 10);
  ASSERT_TRUE(stolen.has_value());
  EXPECT_TRUE(stolen->stolen);
  EXPECT_EQ(stolen->ids[0], 3u);
  EXPECT_EQ(sched.GetStats().steals, 1u);
  // With stealing disabled an empty own deque means no work.
  StealScheduler::Config no_steal = config;
  no_steal.work_stealing = false;
  StealScheduler fixed(no_steal);
  fixed.Submit(1, 100, false, 0);
  EXPECT_FALSE(fixed.Acquire(2, 0).has_value());
}

TEST(StealScheduler, BondedPairsNeverSplitAndSkipHolds) {
  StealScheduler sched(TwoWorkerConfig());
  sched.SubmitBonded(1, 2, 0);
  auto issue = sched.Acquire(0, 0);
  ASSERT_TRUE(issue.has_value());
  EXPECT_TRUE(issue->bonded);
  EXPECT_EQ(issue->count, 2u);
  EXPECT_EQ(issue->ids[0], 1u);
  EXPECT_EQ(issue->ids[1], 2u);
  sched.OnGroupDone();
  // With pairing disabled bonded submits degrade to two solo groups.
  StealScheduler::Config solo_config = TwoWorkerConfig();
  solo_config.enable_pairing = false;
  StealScheduler solo(solo_config);
  solo.SubmitBonded(1, 2, 0);
  std::size_t jobs = 0;
  while (auto got = solo.Acquire(0, 0)) {
    EXPECT_EQ(got->count, 1u);
    EXPECT_FALSE(got->bonded);
    jobs += got->count;
    solo.OnGroupDone();
  }
  EXPECT_EQ(jobs, 2u);
}

TEST(StealScheduler, AdaptiveBatchScalesWithBacklogAndCapsAtMaxBatch) {
  StealScheduler::Config config = TwoWorkerConfig();
  config.max_batch = 4;
  StealScheduler sched(config);
  // Backlog of 12 non-pairable groups over 2 workers: target is
  // clamp(12 / 2, 1, 4) = 4.
  for (std::uint64_t id = 1; id <= 12; ++id) {
    sched.Submit(id, 200 + id, /*pairable=*/false, 0);
  }
  std::vector<StealScheduler::Issue> issues;
  EXPECT_EQ(sched.AcquireBatch(0, 0, &issues), 4u);
  EXPECT_EQ(issues.size(), 4u);
  EXPECT_EQ(sched.GetStats().batch_acquires, 1u);
  EXPECT_EQ(sched.GetStats().max_batch_claimed, 4u);
  // A near-empty pool claims exactly one (never zero while work exists).
  for (int i = 0; i < 4; ++i) sched.OnGroupDone();
  issues.clear();
  while (sched.AcquireBatch(1, 0, &issues) != 0) {
    for (std::size_t i = 0; i < issues.size(); ++i) sched.OnGroupDone();
    issues.clear();
  }
  EXPECT_TRUE(sched.Idle());
  StealScheduler light(config);
  light.Submit(1, 300, false, 0);
  issues.clear();
  EXPECT_EQ(light.AcquireBatch(0, 0, &issues), 1u);
}

// Model check: a seeded stream of submits, bonded submits, acquires,
// completions, and clock advances, validated against a brute-force
// reference model of what may legally issue.
TEST(StealScheduler, RandomizedModelConservationAndNoStarvation) {
  auto rng = test::TestRng();
  for (std::uint64_t round = 0; round < 8; ++round) {
    StealScheduler::Config config;
    config.workers = 1 + rng.Engine().NextBelow(4);
    config.unpair_timeout = 50 + rng.Engine().NextBelow(200);
    config.max_batch = 1 + rng.Engine().NextBelow(8);
    config.work_stealing = rng.Engine().NextBelow(4) != 0;
    StealScheduler sched(config);

    std::map<std::uint64_t, std::uint64_t> key_of;       // reference model
    std::map<std::uint64_t, std::uint64_t> bond_partner;
    std::set<std::uint64_t> outstanding;                  // submitted, unissued
    std::set<std::uint64_t> issued;
    std::uint64_t next_id = 1;
    std::uint64_t now = 0;
    std::size_t in_flight = 0;
    std::uint64_t cancelled_total = 0;

    const auto check_issue = [&](const StealScheduler::Issue& issue) {
      ASSERT_GE(issue.count, 1u);
      ASSERT_LE(issue.count, 2u);
      for (std::size_t i = 0; i < issue.count; ++i) {
        const std::uint64_t id = issue.ids[i];
        ASSERT_TRUE(outstanding.count(id)) << "issued unknown id " << id;
        outstanding.erase(id);
        ASSERT_TRUE(issued.insert(id).second) << "id issued twice: " << id;
      }
      if (issue.bonded) {
        ASSERT_EQ(issue.count, 2u);
        ASSERT_EQ(bond_partner.at(issue.ids[0]), issue.ids[1]);
      } else if (issue.count == 2) {
        ASSERT_EQ(key_of.at(issue.ids[0]), key_of.at(issue.ids[1]))
            << "opportunistic pair across keys";
      }
      ++in_flight;
    };

    for (int step = 0; step < 600; ++step) {
      switch (rng.Engine().NextBelow(7)) {
        case 0:
        case 1: {  // pairable submit on a small key space
          const std::uint64_t key = rng.Engine().NextBelow(3);
          key_of[next_id] = key;
          outstanding.insert(next_id);
          sched.Submit(next_id, key, true, now);
          ++next_id;
          break;
        }
        case 2: {  // non-pairable submit
          const std::uint64_t key = 50 + rng.Engine().NextBelow(3);
          key_of[next_id] = key;
          outstanding.insert(next_id);
          sched.Submit(next_id, key, false, now);
          ++next_id;
          break;
        }
        case 3: {  // bonded submit
          key_of[next_id] = 90;
          key_of[next_id + 1] = 91;
          bond_partner[next_id] = next_id + 1;
          outstanding.insert(next_id);
          outstanding.insert(next_id + 1);
          sched.SubmitBonded(next_id, next_id + 1, now);
          next_id += 2;
          break;
        }
        case 4: {  // acquire from a random worker
          const std::size_t worker = rng.Engine().NextBelow(config.workers);
          if (auto issue = sched.Acquire(worker, now)) check_issue(*issue);
          break;
        }
        case 5: {  // deadline cancellation of a random queued job
          if (outstanding.empty()) {
            // Cancelling an unknown / already-issued id must be a no-op.
            ASSERT_FALSE(sched.Cancel(next_id + 1000));
            break;
          }
          auto it = outstanding.begin();
          std::advance(it, rng.Engine().NextBelow(outstanding.size()));
          const std::uint64_t id = *it;
          ASSERT_TRUE(sched.Cancel(id)) << "queued id not cancellable: " << id;
          ASSERT_FALSE(sched.Cancel(id)) << "id cancelled twice: " << id;
          outstanding.erase(it);
          ++cancelled_total;
          break;
        }
        default: {  // time passes; maybe retire an in-flight group
          now += 1 + rng.Engine().NextBelow(40);
          if (in_flight > 0 && rng.Engine().NextBelow(2) == 0) {
            sched.OnGroupDone();
            --in_flight;
          }
          break;
        }
      }
      // Conservation invariant: the scheduler's queued count always
      // matches the reference model's outstanding set.
      ASSERT_EQ(sched.PendingJobs(), outstanding.size());
    }

    // Drain: advance past every hold deadline and acquire round-robin.
    // No-starvation means every submitted id eventually issues.
    now += config.unpair_timeout + 1;
    bool progress = true;
    while (progress) {
      progress = false;
      for (std::size_t worker = 0; worker < config.workers; ++worker) {
        while (auto issue = sched.Acquire(worker, now)) {
          check_issue(*issue);
          progress = true;
        }
      }
      now += config.unpair_timeout + 1;
      if (!sched.Idle()) progress = true;
    }
    ASSERT_TRUE(outstanding.empty()) << "starved jobs remain";
    ASSERT_TRUE(sched.Idle());
    // Counter conservation: every submitted job either issued or was
    // cancelled — nothing lost, nothing duplicated.
    ASSERT_EQ(issued.size() + cancelled_total, key_of.size());
    ASSERT_EQ(sched.GetStats().cancelled, cancelled_total);
    while (in_flight > 0) {
      sched.OnGroupDone();
      --in_flight;
    }
    ASSERT_EQ(sched.InFlightGroups(), 0u);
    EXPECT_THROW(sched.OnGroupDone(), std::logic_error);
  }
}

// ---------------------------------------------------------------------------
// LruCache (the per-modulus engine cache policy)
// ---------------------------------------------------------------------------

TEST(LruCache, EvictsLeastRecentlyUsed) {
  LruCache<int, int> cache(2);
  cache.Put(1, 100);
  cache.Put(2, 200);
  ASSERT_NE(cache.Get(1), nullptr);  // refresh 1: now 2 is the coldest
  cache.Put(3, 300);
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_FALSE(cache.Contains(2));
  EXPECT_TRUE(cache.Contains(3));
  EXPECT_EQ(cache.Evictions(), 1u);
  EXPECT_EQ(*cache.Get(1), 100);
  EXPECT_EQ(cache.Get(2), nullptr);
}

TEST(LruCache, PutRefreshesAndReplacesInPlace) {
  LruCache<int, int> cache(2);
  cache.Put(1, 100);
  cache.Put(2, 200);
  cache.Put(1, 111);  // replace refreshes recency, no eviction
  EXPECT_EQ(cache.Size(), 2u);
  EXPECT_EQ(cache.Evictions(), 0u);
  cache.Put(3, 300);  // now 2 is the coldest
  EXPECT_FALSE(cache.Contains(2));
  EXPECT_EQ(*cache.Get(1), 111);
}

TEST(LruCache, CountsHitsAndMisses) {
  LruCache<int, int> cache(4);
  EXPECT_EQ(cache.Get(9), nullptr);
  cache.Put(9, 90);
  EXPECT_NE(cache.Get(9), nullptr);
  EXPECT_NE(cache.Get(9), nullptr);
  EXPECT_EQ(cache.Hits(), 2u);
  EXPECT_EQ(cache.Misses(), 1u);
}

TEST(LruCache, ZeroCapacityNeverStores) {
  LruCache<int, int> cache(0);
  cache.Put(1, 100);
  EXPECT_EQ(cache.Size(), 0u);
  EXPECT_EQ(cache.Get(1), nullptr);
}

// Randomized cross-check against a straightforward recency-list model.
TEST(LruCache, RandomizedMatchesReferenceModel) {
  auto rng = test::TestRng();
  constexpr std::size_t kCapacity = 4;
  LruCache<int, int> cache(kCapacity);
  std::vector<int> recency;  // most recent first, the oracle
  const auto touch = [&](int key) {
    for (std::size_t i = 0; i < recency.size(); ++i) {
      if (recency[i] == key) {
        recency.erase(recency.begin() + static_cast<std::ptrdiff_t>(i));
        break;
      }
    }
    recency.insert(recency.begin(), key);
  };
  for (int step = 0; step < 2000; ++step) {
    const int key = static_cast<int>(rng.Engine().NextBelow(8));
    if (rng.Engine().NextBelow(2) == 0) {
      const bool present =
          std::find(recency.begin(), recency.end(), key) != recency.end();
      EXPECT_EQ(cache.Get(key) != nullptr, present) << "step " << step;
      if (present) touch(key);
    } else {
      const bool present =
          std::find(recency.begin(), recency.end(), key) != recency.end();
      if (!present && recency.size() == kCapacity) recency.pop_back();
      cache.Put(key, key * 10);
      touch(key);
    }
    ASSERT_EQ(cache.Size(), recency.size()) << "step " << step;
    for (const int live : recency) {
      // Contains() must agree with the model without disturbing recency.
      ASSERT_TRUE(cache.Contains(live)) << "step " << step;
    }
  }
}

}  // namespace
}  // namespace mont::core
