// Tests for the service scheduling structures in isolation (no threads):
// PairingQueue queue-order / pairing / starvation semantics and the
// LruCache eviction policy behind the per-modulus engine cache.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "core/schedule.hpp"
#include "testutil.hpp"

namespace mont::core {
namespace {

TEST(PairingQueue, FifoWithoutPairing) {
  PairingQueue queue;
  for (std::uint64_t id = 1; id <= 5; ++id) queue.Push(id, /*key=*/7);
  for (std::uint64_t id = 1; id <= 5; ++id) {
    const auto issue = queue.Pop(/*allow_pairing=*/false);
    ASSERT_TRUE(issue.has_value());
    EXPECT_EQ(issue->count, 1u);
    EXPECT_EQ(issue->ids[0], id);
  }
  EXPECT_FALSE(queue.Pop().has_value());
}

TEST(PairingQueue, PairsOldestCompatibleEntries) {
  PairingQueue queue;
  // keys: A B A B  ->  (1,3) then (2,4)
  queue.Push(1, 64);
  queue.Push(2, 32);
  queue.Push(3, 64);
  queue.Push(4, 32);
  auto first = queue.Pop();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->count, 2u);
  EXPECT_EQ(first->ids[0], 1u);
  EXPECT_EQ(first->ids[1], 3u);
  auto second = queue.Pop();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->count, 2u);
  EXPECT_EQ(second->ids[0], 2u);
  EXPECT_EQ(second->ids[1], 4u);
  EXPECT_TRUE(queue.Empty());
}

TEST(PairingQueue, OddJobOutAndLoneKeysDoNotStarve) {
  PairingQueue queue;
  // Three same-key entries: one must issue alone after the pair.
  queue.Push(1, 8);
  queue.Push(2, 8);
  queue.Push(3, 8);
  auto pair = queue.Pop();
  ASSERT_TRUE(pair.has_value());
  EXPECT_EQ(pair->count, 2u);
  auto leftover = queue.Pop();
  ASSERT_TRUE(leftover.has_value());
  EXPECT_EQ(leftover->count, 1u);
  EXPECT_EQ(leftover->ids[0], 3u);
  // Entries with unmatched keys each issue alone, in FIFO order.
  queue.Push(4, 10);
  queue.Push(5, 11);
  EXPECT_EQ(queue.Pop()->ids[0], 4u);
  EXPECT_EQ(queue.Pop()->ids[0], 5u);
}

TEST(PairingQueue, BondedEntriesOnlyPairWithTheirPartner) {
  PairingQueue queue;
  const std::uint64_t bond = (std::uint64_t{1} << 63) | 0;
  queue.Push(1, 64);                    // opportunistic
  queue.Push(2, bond, /*bonded=*/true);  // bonded half 1
  queue.Push(3, 64);                    // opportunistic
  queue.Push(4, bond, /*bonded=*/true);  // bonded half 2
  auto first = queue.Pop();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->ids[0], 1u);
  EXPECT_EQ(first->ids[1], 3u);  // skipped the bonded entry in between
  EXPECT_FALSE(first->bonded);
  auto second = queue.Pop();
  ASSERT_TRUE(second.has_value());
  EXPECT_TRUE(second->bonded);
  EXPECT_EQ(second->ids[0], 2u);
  EXPECT_EQ(second->ids[1], 4u);
}

TEST(PairingQueue, BondedAndOpportunisticNeverMixOnSameKey) {
  PairingQueue queue;
  queue.Push(1, 64, /*bonded=*/true);
  queue.Push(2, 64, /*bonded=*/false);
  auto first = queue.Pop();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->count, 1u);  // bonded front cannot claim the plain entry
  auto second = queue.Pop();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->count, 1u);
}

// Property check: every id issues exactly once, pairs always share a key,
// and the first slot of successive issues preserves FIFO order.
TEST(PairingQueue, RandomizedConservationAndOrder) {
  auto rng = test::TestRng();
  PairingQueue queue;
  constexpr std::uint64_t kEntries = 500;
  std::map<std::uint64_t, std::uint64_t> key_of;
  for (std::uint64_t id = 1; id <= kEntries; ++id) {
    const std::uint64_t key = rng.Engine().NextBelow(5);
    key_of[id] = key;
    queue.Push(id, key);
  }
  std::set<std::uint64_t> seen;
  std::uint64_t last_front = 0;
  while (auto issue = queue.Pop()) {
    EXPECT_GT(issue->ids[0], last_front) << "FIFO order of issue fronts";
    last_front = issue->ids[0];
    for (std::size_t i = 0; i < issue->count; ++i) {
      EXPECT_TRUE(seen.insert(issue->ids[i]).second)
          << "id issued twice: " << issue->ids[i];
    }
    if (issue->count == 2) {
      EXPECT_EQ(key_of[issue->ids[0]], key_of[issue->ids[1]]);
    }
  }
  EXPECT_EQ(seen.size(), kEntries);
}

// ---------------------------------------------------------------------------
// LruCache (the per-modulus engine cache policy)
// ---------------------------------------------------------------------------

TEST(LruCache, EvictsLeastRecentlyUsed) {
  LruCache<int, int> cache(2);
  cache.Put(1, 100);
  cache.Put(2, 200);
  ASSERT_NE(cache.Get(1), nullptr);  // refresh 1: now 2 is the coldest
  cache.Put(3, 300);
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_FALSE(cache.Contains(2));
  EXPECT_TRUE(cache.Contains(3));
  EXPECT_EQ(cache.Evictions(), 1u);
  EXPECT_EQ(*cache.Get(1), 100);
  EXPECT_EQ(cache.Get(2), nullptr);
}

TEST(LruCache, PutRefreshesAndReplacesInPlace) {
  LruCache<int, int> cache(2);
  cache.Put(1, 100);
  cache.Put(2, 200);
  cache.Put(1, 111);  // replace refreshes recency, no eviction
  EXPECT_EQ(cache.Size(), 2u);
  EXPECT_EQ(cache.Evictions(), 0u);
  cache.Put(3, 300);  // now 2 is the coldest
  EXPECT_FALSE(cache.Contains(2));
  EXPECT_EQ(*cache.Get(1), 111);
}

TEST(LruCache, CountsHitsAndMisses) {
  LruCache<int, int> cache(4);
  EXPECT_EQ(cache.Get(9), nullptr);
  cache.Put(9, 90);
  EXPECT_NE(cache.Get(9), nullptr);
  EXPECT_NE(cache.Get(9), nullptr);
  EXPECT_EQ(cache.Hits(), 2u);
  EXPECT_EQ(cache.Misses(), 1u);
}

TEST(LruCache, ZeroCapacityNeverStores) {
  LruCache<int, int> cache(0);
  cache.Put(1, 100);
  EXPECT_EQ(cache.Size(), 0u);
  EXPECT_EQ(cache.Get(1), nullptr);
}

// Randomized cross-check against a straightforward recency-list model.
TEST(LruCache, RandomizedMatchesReferenceModel) {
  auto rng = test::TestRng();
  constexpr std::size_t kCapacity = 4;
  LruCache<int, int> cache(kCapacity);
  std::vector<int> recency;  // most recent first, the oracle
  const auto touch = [&](int key) {
    for (std::size_t i = 0; i < recency.size(); ++i) {
      if (recency[i] == key) {
        recency.erase(recency.begin() + static_cast<std::ptrdiff_t>(i));
        break;
      }
    }
    recency.insert(recency.begin(), key);
  };
  for (int step = 0; step < 2000; ++step) {
    const int key = static_cast<int>(rng.Engine().NextBelow(8));
    if (rng.Engine().NextBelow(2) == 0) {
      const bool present =
          std::find(recency.begin(), recency.end(), key) != recency.end();
      EXPECT_EQ(cache.Get(key) != nullptr, present) << "step " << step;
      if (present) touch(key);
    } else {
      const bool present =
          std::find(recency.begin(), recency.end(), key) != recency.end();
      if (!present && recency.size() == kCapacity) recency.pop_back();
      cache.Put(key, key * 10);
      touch(key);
    }
    ASSERT_EQ(cache.Size(), recency.size()) << "step " << step;
    for (const int live : recency) {
      // Contains() must agree with the model without disturbing recency.
      ASSERT_TRUE(cache.Contains(live)) << "step " << step;
    }
  }
}

}  // namespace
}  // namespace mont::core
