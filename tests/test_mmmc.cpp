// Tests for the cycle-accurate MMMC behavioural model: functional
// correctness against the software Algorithm-2 reference, the paper's exact
// cycle count 3l+4, the ASM state sequence, and the cell-level invariants.
#include <gtest/gtest.h>

#include "bignum/biguint.hpp"
#include "bignum/montgomery.hpp"
#include "bignum/random.hpp"
#include "core/mmmc.hpp"
#include "core/schedule.hpp"
#include "testutil.hpp"

namespace mont::core {
namespace {

using bignum::BigUInt;
using bignum::BitSerialMontgomery;
using bignum::RandomBigUInt;

TEST(Mmmc, RejectsBadModulus) {
  EXPECT_THROW(Mmmc(BigUInt{8}), std::invalid_argument);
  EXPECT_THROW(Mmmc(BigUInt{1}), std::invalid_argument);
}

TEST(Mmmc, RejectsOutOfRangeOperands) {
  Mmmc circuit(BigUInt{239});
  EXPECT_THROW(circuit.ApplyInputs(BigUInt{478}, BigUInt{1}),
               std::invalid_argument);
  EXPECT_THROW(circuit.ApplyInputs(BigUInt{1}, BigUInt{478}),
               std::invalid_argument);
}

// Exhaustive check against the software reference for a small modulus.
TEST(Mmmc, MatchesAlg2ReferenceExhaustive) {
  const BigUInt n{23};
  Mmmc circuit(n);
  BitSerialMontgomery reference(n);
  for (std::uint64_t x = 0; x < 46; ++x) {
    for (std::uint64_t y = 0; y < 46; ++y) {
      EXPECT_EQ(circuit.Multiply(BigUInt{x}, BigUInt{y}),
                reference.MultiplyAlg2(BigUInt{x}, BigUInt{y}))
          << "x=" << x << " y=" << y;
    }
  }
}

// The paper's headline: one MMM takes exactly 3l+4 clock cycles.
class MmmcCycleCount : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MmmcCycleCount, ExactlyThreeLPlusFour) {
  const std::size_t bits = GetParam();
  auto rng = test::TestRng();
  const BigUInt n = rng.OddExactBits(bits);
  Mmmc circuit(n);
  ASSERT_EQ(circuit.l(), bits);
  const BigUInt two_n = n << 1;
  for (int trial = 0; trial < 3; ++trial) {
    const BigUInt x = rng.Below(two_n);
    const BigUInt y = rng.Below(two_n);
    std::uint64_t cycles = 0;
    circuit.Multiply(x, y, &cycles);
    EXPECT_EQ(cycles, MultiplyCycles(bits)) << "l=" << bits;
    EXPECT_EQ(cycles, 3 * bits + 4);
  }
}

INSTANTIATE_TEST_SUITE_P(BitLengths, MmmcCycleCount,
                         ::testing::Values(2, 3, 4, 5, 8, 13, 16, 31, 32, 33,
                                           64, 128, 160, 192, 256));

// Property: outputs are always < 2N and chainable (Walter's bound through
// the hardware path).
TEST(MmmcProperty, OutputBoundAndChaining) {
  auto rng = test::TestRng();
  for (const std::size_t bits : {8u, 16u, 24u, 48u}) {
    const BigUInt n = rng.OddExactBits(bits);
    Mmmc circuit(n);
    const BigUInt two_n = n << 1;
    BigUInt a = rng.Below(two_n);
    const BigUInt b = rng.Below(two_n);
    for (int step = 0; step < 8; ++step) {
      a = circuit.Multiply(a, b);
      ASSERT_LT(a, two_n);
    }
  }
}

// Property: hardware result is congruent to x*y*R^-1 mod N, chainable,
// and survives the boundary operands {0, 1, 2N-1}.
TEST(MmmcProperty, CongruenceRandom) {
  auto rng = test::TestRng();
  for (const std::size_t bits : {4u, 11u, 24u, 40u, 64u}) {
    const BigUInt n = rng.OddExactBits(bits);
    Mmmc circuit(n);
    const BigUInt r = BigUInt::PowerOfTwo(bits + 2);
    test::ForEachOperandPair(rng, n << 1, /*trials=*/4,
                             [&](const BigUInt& x, const BigUInt& y) {
                               EXPECT_TRUE(test::IsChainableMontProduct(
                                   circuit.Multiply(x, y), x, y, n, r))
                                   << "bits=" << bits;
                             });
  }
}

TEST(Mmmc, IdentityAndZeroOperands) {
  const BigUInt n{1000003};
  Mmmc circuit(n);
  BitSerialMontgomery reference(n);
  // 0 * y = 0 through the array.
  EXPECT_TRUE(circuit.Multiply(BigUInt{0}, BigUInt{12345}).IsZero());
  EXPECT_TRUE(circuit.Multiply(BigUInt{12345}, BigUInt{0}).IsZero());
  // Mont(x, R^2 mod N) = x*R mod 2N round-trips through Mont(., 1).
  const BigUInt x{987654};
  const BigUInt x_mont = circuit.Multiply(x, reference.RSquaredModN());
  BigUInt back = circuit.Multiply(x_mont, BigUInt{1});
  if (back >= n) back -= n;
  EXPECT_EQ(back, x);
}

// ASM sequence (Fig. 4): IDLE until START, then MUL1/MUL2 alternation,
// one OUT cycle with DONE high, then IDLE again.
TEST(MmmcAsm, StateSequenceMatchesFigure4) {
  const BigUInt n{45};  // l = 6 -> 22 cycles
  Mmmc circuit(n);
  EXPECT_EQ(circuit.State(), MmmcState::kIdle);
  circuit.Tick();
  EXPECT_EQ(circuit.State(), MmmcState::kIdle) << "no START -> stay in IDLE";

  circuit.ApplyInputs(BigUInt{7}, BigUInt{9});
  circuit.Tick();  // load edge
  EXPECT_EQ(circuit.State(), MmmcState::kMul1);
  const std::size_t l = circuit.l();
  // MUL1/MUL2 alternate for 3l+3 compute cycles (the last may be either
  // parity), then OUT.
  std::size_t compute_cycles = 0;
  while (circuit.State() == MmmcState::kMul1 ||
         circuit.State() == MmmcState::kMul2) {
    const MmmcState expected =
        (compute_cycles % 2 == 0) ? MmmcState::kMul1 : MmmcState::kMul2;
    EXPECT_EQ(circuit.State(), expected) << "cycle " << compute_cycles;
    EXPECT_FALSE(circuit.Done());
    circuit.Tick();
    ++compute_cycles;
  }
  EXPECT_EQ(compute_cycles, 3 * l + 3);
  EXPECT_EQ(circuit.State(), MmmcState::kOut);
  EXPECT_TRUE(circuit.Done());
  circuit.Tick();
  EXPECT_EQ(circuit.State(), MmmcState::kIdle);
  EXPECT_FALSE(circuit.Done());
}

// The comparator fires when the counter reaches l+1, i.e. in compute cycle
// 2l+2 — exactly when the rightmost cell processes the last iteration.
TEST(MmmcAsm, ComparatorFiresAtCounterLPlusOne) {
  const BigUInt n{201};  // l = 8
  Mmmc circuit(n);
  circuit.ApplyInputs(BigUInt{100}, BigUInt{55});
  circuit.Tick();  // load
  const std::size_t l = circuit.l();
  std::size_t first_count_end_cycle = 0;
  for (std::size_t k = 0; !circuit.Done(); ++k) {
    if (circuit.CountEnd() && first_count_end_cycle == 0) {
      first_count_end_cycle = k;
    }
    circuit.Tick();
  }
  EXPECT_EQ(first_count_end_cycle, 2 * l + 2);
}

// White-box invariant: the counter increments only every second cycle
// (state MUL2), as the ASM chart prescribes.
TEST(MmmcAsm, CounterIncrementsInMul2Only) {
  const BigUInt n{119};  // l = 7
  Mmmc circuit(n);
  circuit.ApplyInputs(BigUInt{3}, BigUInt{5});
  circuit.Tick();
  std::uint64_t prev = circuit.Counter();
  while (!circuit.Done()) {
    const MmmcState state = circuit.State();
    circuit.Tick();
    const std::uint64_t now = circuit.Counter();
    if (state == MmmcState::kMul2) {
      EXPECT_EQ(now, prev + 1);
    } else {
      EXPECT_EQ(now, prev);
    }
    prev = now;
  }
}

// White-box invariant: t_{i,0} = 0 — the stored T value is always even
// (index 0 of TBits() is the constant 0 slot).
TEST(MmmcInvariant, StoredTAlwaysEven) {
  auto rng = test::TestRng();
  const BigUInt n = rng.OddExactBits(12);
  Mmmc circuit(n);
  const BigUInt two_n = n << 1;
  circuit.ApplyInputs(rng.Below(two_n), rng.Below(two_n));
  circuit.Tick();
  while (!circuit.Done()) {
    EXPECT_EQ(circuit.TBits()[0], 0u);
    circuit.Tick();
  }
}

// Back-to-back multiplications on one circuit instance must not interfere
// (all datapath state is cleared on the load edge).
TEST(Mmmc, BackToBackMultiplicationsIndependent) {
  auto rng = test::TestRng();
  const BigUInt n = rng.OddExactBits(20);
  Mmmc circuit(n);
  BitSerialMontgomery reference(n);
  const BigUInt two_n = n << 1;
  for (int trial = 0; trial < 10; ++trial) {
    const BigUInt x = rng.Below(two_n);
    const BigUInt y = rng.Below(two_n);
    EXPECT_EQ(circuit.Multiply(x, y), reference.MultiplyAlg2(x, y));
  }
}

// Schedule formulas (sanity of the closed forms used by benches).
TEST(Schedule, ClosedForms) {
  EXPECT_EQ(CellComputeCycle(0, 0), 0u);
  EXPECT_EQ(CellComputeCycle(5, 3), 13u);
  EXPECT_EQ(MultiplyCycles(1024), 3076u);
  EXPECT_EQ(PrecomputeCycles(1024), 5 * 1024u + 10);
  EXPECT_EQ(PostprocessCycles(1024), 1026u);
  EXPECT_EQ(ExponentiationLowerBound(32), 3u * 32 * 32 + 10 * 32 + 12);
  EXPECT_EQ(ExponentiationUpperBound(32), 6u * 32 * 32 + 14 * 32 + 12);
  // Eq. 10 endpoints are ExponentiationCycles at weight 0 / weight l.
  for (const std::size_t l : {32u, 128u, 1024u}) {
    EXPECT_EQ(ExponentiationCycles(l, l, 0), ExponentiationLowerBound(l));
    EXPECT_EQ(ExponentiationCycles(l, l, l), ExponentiationUpperBound(l));
  }
}

}  // namespace
}  // namespace mont::core
