// Unit and property tests for the BigUInt arbitrary-precision substrate.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "bignum/biguint.hpp"
#include "bignum/random.hpp"
#include "testutil.hpp"

namespace mont::bignum {
namespace {

TEST(BigUIntBasics, DefaultIsZero) {
  BigUInt z;
  EXPECT_TRUE(z.IsZero());
  EXPECT_EQ(z.BitLength(), 0u);
  EXPECT_EQ(z.ToHex(), "0");
  EXPECT_EQ(z.ToDec(), "0");
}

TEST(BigUIntBasics, FromUint64RoundTrips) {
  for (const std::uint64_t v :
       {0ull, 1ull, 2ull, 0xffffffffull, 0x100000000ull, 0xdeadbeefcafebabeull,
        ~0ull}) {
    const BigUInt big{v};
    EXPECT_EQ(big.ToUint64(), v);
  }
}

TEST(BigUIntBasics, HexRoundTrip) {
  const std::string hex = "deadbeefcafebabe0123456789abcdef";
  const BigUInt v = BigUInt::FromHex(hex);
  EXPECT_EQ(v.ToHex(), hex);
  EXPECT_EQ(BigUInt::FromHex("0x10").ToUint64(), 16u);
  EXPECT_EQ(BigUInt::FromHex("000001").ToUint64(), 1u);
}

TEST(BigUIntBasics, DecRoundTrip) {
  const std::string dec = "123456789012345678901234567890123456789";
  EXPECT_EQ(BigUInt::FromDec(dec).ToDec(), dec);
  EXPECT_EQ(BigUInt::FromDec("0").ToDec(), "0");
  EXPECT_EQ(BigUInt::FromDec("999999999").ToUint64(), 999999999u);
  EXPECT_EQ(BigUInt::FromDec("1000000000").ToUint64(), 1000000000u);
}

TEST(BigUIntBasics, BadInputThrows) {
  EXPECT_THROW(BigUInt::FromHex(""), std::invalid_argument);
  EXPECT_THROW(BigUInt::FromHex("xyz"), std::invalid_argument);
  EXPECT_THROW(BigUInt::FromDec(""), std::invalid_argument);
  EXPECT_THROW(BigUInt::FromDec("12a"), std::invalid_argument);
}

TEST(BigUIntBasics, PowerOfTwo) {
  EXPECT_EQ(BigUInt::PowerOfTwo(0).ToUint64(), 1u);
  EXPECT_EQ(BigUInt::PowerOfTwo(31).ToUint64(), 0x80000000ull);
  EXPECT_EQ(BigUInt::PowerOfTwo(32).ToUint64(), 0x100000000ull);
  EXPECT_EQ(BigUInt::PowerOfTwo(100).BitLength(), 101u);
}

TEST(BigUIntBasics, BitAccess) {
  BigUInt v;
  v.SetBit(0, true);
  v.SetBit(63, true);
  v.SetBit(100, true);
  EXPECT_TRUE(v.Bit(0));
  EXPECT_TRUE(v.Bit(63));
  EXPECT_TRUE(v.Bit(100));
  EXPECT_FALSE(v.Bit(50));
  EXPECT_FALSE(v.Bit(1000));
  EXPECT_EQ(v.BitLength(), 101u);
  EXPECT_EQ(v.PopCount(), 3u);
  v.SetBit(100, false);
  EXPECT_EQ(v.BitLength(), 64u);
}

TEST(BigUIntArithmetic, AdditionCarries) {
  const BigUInt a = BigUInt::FromHex("ffffffffffffffff");
  const BigUInt b{1};
  EXPECT_EQ((a + b).ToHex(), "10000000000000000");
}

TEST(BigUIntArithmetic, SubtractionBorrows) {
  const BigUInt a = BigUInt::FromHex("10000000000000000");
  const BigUInt b{1};
  EXPECT_EQ((a - b).ToHex(), "ffffffffffffffff");
  EXPECT_THROW(b - a, std::underflow_error);
}

TEST(BigUIntArithmetic, MultiplicationSmall) {
  EXPECT_EQ((BigUInt{0} * BigUInt{12345}).ToUint64(), 0u);
  EXPECT_EQ((BigUInt{0xffffffffull} * BigUInt{0xffffffffull}).ToHex(),
            "fffffffe00000001");
}

TEST(BigUIntArithmetic, KnownProduct) {
  const BigUInt a = BigUInt::FromDec("123456789123456789123456789");
  const BigUInt b = BigUInt::FromDec("987654321987654321987654321");
  EXPECT_EQ((a * b).ToDec(),
            "121932631356500531591068431581771069347203169112635269");
}

TEST(BigUIntArithmetic, ShiftInverses) {
  const BigUInt v = BigUInt::FromHex("123456789abcdef0123456789abcdef");
  for (const std::size_t shift : {1u, 17u, 32u, 33u, 64u, 129u}) {
    EXPECT_EQ((v << shift) >> shift, v) << "shift=" << shift;
  }
}

TEST(BigUIntArithmetic, DivisionByZeroThrows) {
  EXPECT_THROW(BigUInt{1} / BigUInt{}, std::domain_error);
  EXPECT_THROW(BigUInt{1} % BigUInt{}, std::domain_error);
}

TEST(BigUIntArithmetic, ShortDivision) {
  const BigUInt a = BigUInt::FromDec("123456789012345678901234567891");
  EXPECT_EQ((a / BigUInt{7}).ToDec(), "17636684144620811271604938270");
  EXPECT_EQ((a % BigUInt{7}).ToUint64(), 1u);
}

TEST(BigUIntArithmetic, CompareOrdering) {
  const BigUInt a{5}, b{7};
  EXPECT_LT(a, b);
  EXPECT_LE(a, a);
  EXPECT_GT(b, a);
  EXPECT_GE(b, b);
  EXPECT_NE(a, b);
}

// Property: for random a, b (b != 0): a == (a/b)*b + (a%b) and a%b < b.
TEST(BigUIntProperty, DivModReconstruction) {
  auto rng = test::TestRng();
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t abits = 1 + static_cast<std::size_t>(rng.Engine().NextBelow(700));
    const std::size_t bbits = 1 + static_cast<std::size_t>(rng.Engine().NextBelow(700));
    const BigUInt a = rng.ExactBits(abits);
    const BigUInt b = rng.ExactBits(bbits);
    if (b.IsZero()) continue;
    BigUInt q, r;
    BigUInt::DivMod(a, b, q, r);
    EXPECT_EQ(q * b + r, a);
    EXPECT_LT(r, b);
  }
}

// Property: Karatsuba (large operands) agrees with schoolbook identity
// (a+b)^2 - (a-b)^2 == 4ab.
TEST(BigUIntProperty, KaratsubaConsistency) {
  auto rng = test::TestRng();
  for (int trial = 0; trial < 20; ++trial) {
    const BigUInt a = rng.ExactBits(2048);
    const BigUInt b = rng.ExactBits(1900);
    const BigUInt sum = a + b;
    const BigUInt diff = a - b;
    EXPECT_EQ(sum * sum - diff * diff, (a * b) << 2);
  }
}

// Property: multiplication is commutative and distributes over addition.
TEST(BigUIntProperty, RingAxioms) {
  auto rng = test::TestRng();
  for (int trial = 0; trial < 100; ++trial) {
    const BigUInt a = rng.ExactBits(300);
    const BigUInt b = rng.ExactBits(200);
    const BigUInt c = rng.ExactBits(250);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ((a + b) + c, a + (b + c));
  }
}

TEST(BigUIntNumberTheory, GcdKnownValues) {
  EXPECT_EQ(BigUInt::Gcd(BigUInt{12}, BigUInt{18}).ToUint64(), 6u);
  EXPECT_EQ(BigUInt::Gcd(BigUInt{17}, BigUInt{5}).ToUint64(), 1u);
  EXPECT_EQ(BigUInt::Gcd(BigUInt{0}, BigUInt{5}).ToUint64(), 5u);
  EXPECT_EQ(BigUInt::Gcd(BigUInt{5}, BigUInt{0}).ToUint64(), 5u);
  EXPECT_EQ(BigUInt::Gcd(BigUInt{48}, BigUInt{64}).ToUint64(), 16u);
}

// Property: gcd divides both operands and gcd(ka, kb) = k*gcd(a,b).
TEST(BigUIntNumberTheory, GcdProperties) {
  auto rng = test::TestRng();
  for (int trial = 0; trial < 50; ++trial) {
    const BigUInt a = rng.ExactBits(128);
    const BigUInt b = rng.ExactBits(96);
    const BigUInt g = BigUInt::Gcd(a, b);
    EXPECT_TRUE((a % g).IsZero());
    EXPECT_TRUE((b % g).IsZero());
    const BigUInt k{12345};
    EXPECT_EQ(BigUInt::Gcd(a * k, b * k), g * k);
  }
}

TEST(BigUIntNumberTheory, ModInverse) {
  const BigUInt m{101};
  for (std::uint64_t a = 1; a < 101; ++a) {
    const BigUInt inv = BigUInt::ModInverse(BigUInt{a}, m);
    EXPECT_EQ(((BigUInt{a} * inv) % m).ToUint64(), 1u) << "a=" << a;
  }
  EXPECT_THROW(BigUInt::ModInverse(BigUInt{6}, BigUInt{9}), std::domain_error);
}

TEST(BigUIntNumberTheory, ModInverseLarge) {
  auto rng = test::TestRng();
  const BigUInt m = rng.OddExactBits(521);
  for (int trial = 0; trial < 20; ++trial) {
    const BigUInt a = rng.Below(m);
    if (a.IsZero() || !BigUInt::Gcd(a, m).IsOne()) continue;
    const BigUInt inv = BigUInt::ModInverse(a, m);
    EXPECT_TRUE(((a * inv) % m).IsOne());
  }
}

TEST(BigUIntNumberTheory, ModExpKnownValues) {
  // 2^10 = 1024; 1024 mod 1000 = 24.
  EXPECT_EQ(BigUInt::ModExp(BigUInt{2}, BigUInt{10}, BigUInt{1000}).ToUint64(),
            24u);
  // Fermat: a^(p-1) = 1 mod p for prime p.
  const BigUInt p{1000003};
  EXPECT_EQ(BigUInt::ModExp(BigUInt{2}, p - BigUInt{1}, p).ToUint64(), 1u);
  EXPECT_EQ(BigUInt::ModExp(BigUInt{5}, BigUInt{0}, p).ToUint64(), 1u);
}

TEST(BigUIntRandom, DeterministicStreams) {
  Xoshiro256 a(42), b(42), c(43);
  bool any_diff = false;
  for (int i = 0; i < 16; ++i) {
    const std::uint64_t va = a.Next();
    EXPECT_EQ(va, b.Next());
    if (va != c.Next()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(BigUIntRandom, ExactBitsHasExactBitLength) {
  auto rng = test::TestRng();
  for (const std::size_t bits : {1u, 2u, 31u, 32u, 33u, 257u, 1024u}) {
    EXPECT_EQ(rng.ExactBits(bits).BitLength(), bits);
  }
}

TEST(BigUIntRandom, BelowStaysBelow) {
  auto rng = test::TestRng();
  const BigUInt bound = BigUInt::FromDec("98765432109876543210");
  for (int i = 0; i < 100; ++i) EXPECT_LT(rng.Below(bound), bound);
}

TEST(BigUIntRandom, BalancedHammingWeight) {
  auto rng = test::TestRng();
  for (const std::size_t bits : {16u, 64u, 1024u}) {
    const BigUInt v = rng.BalancedExactBits(bits);
    EXPECT_EQ(v.BitLength(), bits);
    EXPECT_EQ(v.PopCount(), (bits - 1) / 2 + 1);
  }
}

}  // namespace
}  // namespace mont::bignum
