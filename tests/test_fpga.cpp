// Tests for the LUT mapper and the Virtex-E device model: mapping sanity,
// slice packing arithmetic, the flat-clock-period property (Table 2's key
// shape) and calibration against the paper's published slice counts.
#include <gtest/gtest.h>

#include "core/netlist_gen.hpp"
#include "fpga/device_model.hpp"
#include "fpga/lut_mapper.hpp"
#include "rtl/components.hpp"
#include "rtl/netlist.hpp"

namespace mont::fpga {
namespace {

TEST(LutMapper, SingleGateIsOneLut) {
  rtl::Netlist nl;
  const rtl::NetId a = nl.AddInput("a");
  const rtl::NetId b = nl.AddInput("b");
  nl.MarkOutput(nl.And(a, b), "o");
  const LutMapping map = MapToLuts(nl);
  EXPECT_EQ(map.lut_count, 1u);
  EXPECT_EQ(map.ff_count, 0u);
  EXPECT_EQ(map.max_lut_depth, 1u);
}

TEST(LutMapper, FourInputConeCollapsesToOneLut) {
  // o = (a&b) ^ (c|d): 4 distinct inputs, 3 gates -> one LUT4.
  rtl::Netlist nl;
  const rtl::NetId a = nl.AddInput("a");
  const rtl::NetId b = nl.AddInput("b");
  const rtl::NetId c = nl.AddInput("c");
  const rtl::NetId d = nl.AddInput("d");
  nl.MarkOutput(nl.Xor(nl.And(a, b), nl.Or(c, d)), "o");
  const LutMapping map = MapToLuts(nl);
  EXPECT_EQ(map.lut_count, 1u);
  EXPECT_EQ(map.max_lut_depth, 1u);
}

TEST(LutMapper, FiveInputConeNeedsTwoLuts) {
  // o = ((a&b) ^ (c|d)) & e: 5 inputs -> 2 LUT levels.
  rtl::Netlist nl;
  const rtl::NetId a = nl.AddInput("a");
  const rtl::NetId b = nl.AddInput("b");
  const rtl::NetId c = nl.AddInput("c");
  const rtl::NetId d = nl.AddInput("d");
  const rtl::NetId e = nl.AddInput("e");
  nl.MarkOutput(nl.And(nl.Xor(nl.And(a, b), nl.Or(c, d)), e), "o");
  const LutMapping map = MapToLuts(nl);
  EXPECT_EQ(map.lut_count, 2u);
  EXPECT_EQ(map.max_lut_depth, 2u);
}

TEST(LutMapper, ConstantsFoldForFree) {
  rtl::Netlist nl;
  const rtl::NetId a = nl.AddInput("a");
  nl.MarkOutput(nl.And(a, nl.Const1()), "o");
  const LutMapping map = MapToLuts(nl);
  EXPECT_EQ(map.lut_count, 1u);
}

TEST(LutMapper, CountsFlipFlops) {
  rtl::Netlist nl;
  const rtl::NetId a = nl.AddInput("a");
  const rtl::NetId q1 = nl.Dff(a);
  nl.Dff(q1);
  const LutMapping map = MapToLuts(nl);
  EXPECT_EQ(map.ff_count, 2u);
}

TEST(LutMapper, DuplicationAllowsSharedSubcones) {
  // Two outputs both reading a shared 2-input subfunction: duplication
  // should let each output be a single LUT.
  rtl::Netlist nl;
  const rtl::NetId a = nl.AddInput("a");
  const rtl::NetId b = nl.AddInput("b");
  const rtl::NetId c = nl.AddInput("c");
  const rtl::NetId shared = nl.Xor(a, b);
  nl.MarkOutput(nl.And(shared, c), "o1");
  nl.MarkOutput(nl.Or(shared, c), "o2");
  const LutMapping map = MapToLuts(nl);
  EXPECT_EQ(map.max_lut_depth, 1u);
  EXPECT_LE(map.lut_count, 2u);
}

TEST(LutMapper, WiderLutsReduceDepth) {
  // A 6-input XOR tree: LUT4 needs 2 levels, LUT6 needs 1.
  rtl::Netlist nl;
  rtl::Bus in = rtl::InputBus(nl, "i", 6);
  rtl::NetId x = in[0];
  for (std::size_t i = 1; i < 6; ++i) x = nl.Xor(x, in[i]);
  nl.MarkOutput(x, "o");
  EXPECT_EQ(MapToLuts(nl, 4).max_lut_depth, 2u);
  EXPECT_EQ(MapToLuts(nl, 6).max_lut_depth, 1u);
}

TEST(DeviceModel, SlicePackingArithmetic) {
  // A pure register bank: slices track FF/2 with packing overhead.
  rtl::Netlist nl;
  const rtl::NetId d = nl.AddInput("d");
  for (int i = 0; i < 100; ++i) nl.Dff(d);
  const FpgaReport report = AnalyzeNetlist(nl);
  EXPECT_EQ(report.flip_flops, 100u);
  EXPECT_GE(report.slices, 50u);
  EXPECT_LE(report.slices, 60u);
}

TEST(DeviceModel, SlowerGradeIsSlower) {
  const core::MmmcNetlist gen = core::BuildMmmcNetlist(32);
  const FpgaReport fast = AnalyzeNetlist(*gen.netlist,
                                         DeviceParameters::VirtexE8());
  const FpgaReport slow = AnalyzeNetlist(*gen.netlist,
                                         DeviceParameters::VirtexE6());
  EXPECT_GT(slow.clock_period_ns, fast.clock_period_ns);
  EXPECT_EQ(slow.slices, fast.slices) << "area is grade-independent";
}

// Table 2's key shape: the clock period of the MMMC is independent of the
// operand length (the systolic property the paper claims as its headline
// scalability result).
TEST(DeviceModel, MmmcClockPeriodFlatAcrossLengths) {
  double reference = 0;
  for (const std::size_t l : {32u, 64u, 128u, 256u, 512u}) {
    const core::MmmcNetlist gen = core::BuildMmmcNetlist(l);
    const FpgaReport report = AnalyzeNetlist(*gen.netlist);
    if (reference == 0) reference = report.clock_period_ns;
    EXPECT_NEAR(report.clock_period_ns, reference, reference * 0.05)
        << "l=" << l;
  }
  // And it lands inside the paper's measured 9.2-10.6 ns band.
  EXPECT_GT(reference, 9.0);
  EXPECT_LT(reference, 10.8);
}

// Slices grow linearly in l and match the paper's Table 2 within 20%.
TEST(DeviceModel, MmmcSlicesTrackTable2) {
  const struct {
    std::size_t l;
    std::size_t paper_slices;
  } rows[] = {{32, 225}, {64, 418}, {128, 806},
              {256, 1548}, {512, 2972}, {1024, 5706}};
  for (const auto& row : rows) {
    const core::MmmcNetlist gen = core::BuildMmmcNetlist(row.l);
    const FpgaReport report = AnalyzeNetlist(*gen.netlist);
    const double ratio = static_cast<double>(report.slices) /
                         static_cast<double>(row.paper_slices);
    EXPECT_GT(ratio, 0.80) << "l=" << row.l << " slices=" << report.slices;
    EXPECT_LT(ratio, 1.20) << "l=" << row.l << " slices=" << report.slices;
  }
}

TEST(DeviceModel, FastCarryKeepsCounterOffCriticalPath) {
  // A wide counter alone must be far faster than the MMMC datapath.
  rtl::Netlist nl;
  const rtl::NetId inc = nl.AddInput("inc");
  const rtl::NetId rst = nl.AddInput("rst");
  rtl::Counter(nl, 16, inc, rst);
  const FpgaReport report = AnalyzeNetlist(nl);
  EXPECT_LT(report.clock_period_ns, 6.0)
      << "16-bit carry chain must ride the fast-carry resources";
}

}  // namespace
}  // namespace mont::fpga
