// Tests for the dual-channel (C-slow) array: both channels must match the
// software reference for every operand combination, the pair latency is
// 3l+5, and the interleaved right-to-left exponentiator is correct and
// strictly faster than the sequential Algorithm 3.
#include <gtest/gtest.h>

#include "bignum/montgomery.hpp"
#include "bignum/random.hpp"
#include "core/exponentiator.hpp"
#include "core/interleaved.hpp"
#include "core/schedule.hpp"
#include "testutil.hpp"

namespace mont::core {
namespace {

using bignum::BigUInt;
using bignum::BitSerialMontgomery;
using bignum::RandomBigUInt;

TEST(InterleavedMmmc, RejectsBadInputs) {
  EXPECT_THROW(InterleavedMmmc(BigUInt{6}), std::invalid_argument);
  InterleavedMmmc circuit(BigUInt{23});
  EXPECT_THROW(
      circuit.MultiplyPair(BigUInt{46}, BigUInt{1}, BigUInt{1}, BigUInt{1}),
      std::invalid_argument);
}

// Exhaustive dual-channel check on a small modulus.
TEST(InterleavedMmmc, ExhaustiveSmallModulus) {
  const BigUInt n{19};
  InterleavedMmmc circuit(n);
  BitSerialMontgomery reference(n);
  for (std::uint64_t xa = 0; xa < 38; xa += 5) {
    for (std::uint64_t ya = 0; ya < 38; ya += 3) {
      // Channel B gets a deliberately different operand pair.
      const std::uint64_t xb = (xa * 7 + 3) % 38;
      const std::uint64_t yb = (ya * 11 + 1) % 38;
      const auto pair = circuit.MultiplyPair(BigUInt{xa}, BigUInt{ya},
                                             BigUInt{xb}, BigUInt{yb});
      EXPECT_EQ(pair.a, reference.MultiplyAlg2(BigUInt{xa}, BigUInt{ya}))
          << "A channel, xa=" << xa << " ya=" << ya;
      EXPECT_EQ(pair.b, reference.MultiplyAlg2(BigUInt{xb}, BigUInt{yb}))
          << "B channel, xb=" << xb << " yb=" << yb;
    }
  }
}

class InterleavedSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(InterleavedSizes, RandomPairsMatchReference) {
  const std::size_t bits = GetParam();
  auto rng = test::TestRng();
  const BigUInt n = rng.OddExactBits(bits);
  InterleavedMmmc circuit(n);
  BitSerialMontgomery reference(n);
  const BigUInt two_n = n << 1;
  for (int trial = 0; trial < 6; ++trial) {
    const BigUInt xa = rng.Below(two_n), ya = rng.Below(two_n);
    const BigUInt xb = rng.Below(two_n), yb = rng.Below(two_n);
    const auto pair = circuit.MultiplyPair(xa, ya, xb, yb);
    EXPECT_EQ(pair.a, reference.MultiplyAlg2(xa, ya)) << "bits=" << bits;
    EXPECT_EQ(pair.b, reference.MultiplyAlg2(xb, yb)) << "bits=" << bits;
    EXPECT_EQ(pair.cycles, InterleavedMmmc::PairCycles(bits));
  }
}

INSTANTIATE_TEST_SUITE_P(BitLengths, InterleavedSizes,
                         ::testing::Values(2, 3, 4, 5, 8, 16, 33, 64, 128));

TEST(InterleavedMmmc, ThroughputNearlyDoubles) {
  for (const std::size_t l : {64u, 1024u}) {
    const std::uint64_t sequential = 2 * MultiplyCycles(l);
    const std::uint64_t interleaved = InterleavedMmmc::PairCycles(l);
    const double speedup = static_cast<double>(sequential) /
                           static_cast<double>(interleaved);
    EXPECT_GT(speedup, 1.9);
    EXPECT_LT(speedup, 2.0);
  }
}

TEST(InterleavedExponentiator, MatchesReference) {
  auto rng = test::TestRng();
  for (const std::size_t bits : {8u, 24u, 48u}) {
    const BigUInt n = rng.OddExactBits(bits);
    InterleavedExponentiator exp(n);
    for (int trial = 0; trial < 3; ++trial) {
      const BigUInt base = rng.Below(n);
      const BigUInt e = rng.ExactBits(bits);
      EXPECT_EQ(exp.ModExp(base, e), BigUInt::ModExp(base, e, n))
          << "bits=" << bits;
    }
  }
}

TEST(InterleavedExponentiator, EdgeExponents) {
  auto rng = test::TestRng();
  const BigUInt n = rng.OddExactBits(16);
  InterleavedExponentiator exp(n);
  const BigUInt base = rng.Below(n);
  EXPECT_TRUE(exp.ModExp(base, BigUInt{0}).IsOne());
  EXPECT_EQ(exp.ModExp(base, BigUInt{1}), base);
  EXPECT_EQ(exp.ModExp(base, BigUInt{6}), BigUInt::ModExp(base, BigUInt{6}, n));
}

TEST(InterleavedExponentiator, FasterThanSequentialAlgorithm3) {
  auto rng = test::TestRng();
  const std::size_t bits = 64;
  const BigUInt n = rng.OddExactBits(bits);
  const BigUInt base = rng.Below(n);
  const BigUInt e = rng.BalancedExactBits(bits);

  InterleavedExponentiator fast(n);
  EngineStats fast_stats;
  const BigUInt a = fast.ModExp(base, e, &fast_stats);

  Exponentiator sequential(n);
  EngineStats seq_stats;
  const BigUInt b = sequential.ModExp(base, e, &seq_stats);

  ASSERT_EQ(a, b);
  EXPECT_LT(fast_stats.engine_cycles, seq_stats.engine_cycles)
      << "pairing squares with multiplies must win on a balanced exponent";
  // For a balanced exponent the win approaches 1.5x.
  const double speedup = static_cast<double>(seq_stats.engine_cycles) /
                         static_cast<double>(fast_stats.engine_cycles);
  EXPECT_GT(speedup, 1.25);
}

}  // namespace
}  // namespace mont::core
