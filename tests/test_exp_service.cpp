// Tests for the batched async exponentiation service and the paired
// dual-channel exponentiation engine underneath it:
//
//   * PairedModExp fast engine == cycle-accurate dual-channel array ==
//     scalar oracle, including on two *different* equal-length moduli;
//   * a 10k-job multi-threaded property/stress run (mixed moduli, mixed
//     bit lengths, duplicate keys, zero/one/max-bit exponents) checked
//     bit-for-bit against a scalar Exponentiator oracle;
//   * determinism: paired and unpaired execution agree exactly;
//   * stats accounting: paired jobs are charged 3l+5 per MMM pair;
//   * the crypto entry points (RsaPrivateCrtPaired, RsaSignBatch,
//     Curve::ScalarMulBatch) driving the service end to end.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <future>
#include <set>
#include <string_view>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "bignum/gf2.hpp"
#include "bignum/montgomery.hpp"
#include "bignum/random.hpp"
#include "core/exp_service.hpp"
#include "core/exponentiator.hpp"
#include "core/interleaved.hpp"
#include "core/schedule.hpp"
#include "crypto/ecc.hpp"
#include "crypto/rsa.hpp"
#include "testutil.hpp"

namespace mont::core {
namespace {

using bignum::BigUInt;
using bignum::BitSerialMontgomery;
using bignum::RandomBigUInt;

// ---------------------------------------------------------------------------
// Dual-modulus interleaved array
// ---------------------------------------------------------------------------

TEST(InterleavedDualModulus, RejectsUnequalBitLengths) {
  EXPECT_THROW(InterleavedMmmc(BigUInt{23}, BigUInt{257}),
               std::invalid_argument);
  EXPECT_THROW(InterleavedMmmc(BigUInt{23}, BigUInt{22}),
               std::invalid_argument);
}

TEST(InterleavedDualModulus, ChannelsReduceByTheirOwnModulus) {
  auto rng = test::TestRng();
  for (const std::size_t bits : {3u, 4u, 8u, 16u, 33u}) {
    const BigUInt n_a = rng.OddExactBits(bits);
    BigUInt n_b = rng.OddExactBits(bits);
    while (n_b == n_a) n_b = rng.OddExactBits(bits);
    InterleavedMmmc circuit(n_a, n_b);
    const BitSerialMontgomery ref_a(n_a), ref_b(n_b);
    const BigUInt two_na = n_a << 1, two_nb = n_b << 1;
    for (int trial = 0; trial < 8; ++trial) {
      const BigUInt xa = rng.Below(two_na), ya = rng.Below(two_na);
      const BigUInt xb = rng.Below(two_nb), yb = rng.Below(two_nb);
      const auto pair = circuit.MultiplyPair(xa, ya, xb, yb);
      EXPECT_EQ(pair.a, ref_a.MultiplyAlg2(xa, ya)) << "bits=" << bits;
      EXPECT_EQ(pair.b, ref_b.MultiplyAlg2(xb, yb)) << "bits=" << bits;
      EXPECT_EQ(pair.cycles, InterleavedMmmc::PairCycles(bits));
    }
  }
}

TEST(InterleavedDualModulus, OperandBoundsArePerChannel) {
  const BigUInt n_a{19}, n_b{29};  // both 5 bits; 2N_a = 38, 2N_b = 58
  InterleavedMmmc circuit(n_a, n_b);
  EXPECT_THROW(
      circuit.MultiplyPair(BigUInt{40}, BigUInt{1}, BigUInt{1}, BigUInt{1}),
      std::invalid_argument);
  // 40 < 2N_b is legal on channel B even though it exceeds 2N_a.
  const auto pair =
      circuit.MultiplyPair(BigUInt{1}, BigUInt{1}, BigUInt{40}, BigUInt{3});
  const BitSerialMontgomery ref_b(n_b);
  EXPECT_EQ(pair.b, ref_b.MultiplyAlg2(BigUInt{40}, BigUInt{3}));
}

// ---------------------------------------------------------------------------
// PairedModExp
// ---------------------------------------------------------------------------

TEST(PairedModExp, FastAndCycleAccurateMatchOracle) {
  auto rng = test::TestRng();
  for (const std::size_t bits : {5u, 8u, 10u}) {
    const BigUInt n_a = rng.OddExactBits(bits);
    BigUInt n_b = rng.OddExactBits(bits);
    while (n_b == n_a) n_b = rng.OddExactBits(bits);
    const auto engine_a = MakeEngine("bit-serial", n_a);
    const auto engine_b = MakeEngine("bit-serial", n_b);
    InterleavedMmmc array(n_a, n_b);
    for (int trial = 0; trial < 4; ++trial) {
      const BigUInt base_a = rng.Below(n_a), base_b = rng.Below(n_b);
      const BigUInt exp_a = rng.ExactBits(bits), exp_b = rng.ExactBits(bits / 2);
      const auto fast = PairedModExp(*engine_a, base_a, exp_a, *engine_b,
                                     base_b, exp_b);
      const auto accurate = PairedModExp(*engine_a, base_a, exp_a, *engine_b,
                                         base_b, exp_b, &array);
      EXPECT_EQ(fast.a, BigUInt::ModExp(base_a, exp_a, n_a));
      EXPECT_EQ(fast.b, BigUInt::ModExp(base_b, exp_b, n_b));
      EXPECT_EQ(fast.a, accurate.a);
      EXPECT_EQ(fast.b, accurate.b);
      EXPECT_EQ(fast.stats.paired_issues, accurate.stats.paired_issues);
      EXPECT_EQ(fast.stats.single_issues, accurate.stats.single_issues);
      EXPECT_EQ(fast.stats.engine_cycles, accurate.stats.engine_cycles);
    }
  }
}

// Backends without pairable streams (word-serial datapaths) cannot claim
// the dual-channel credit: PairedModExp rejects them outright, and the
// cycle-accurate array path additionally rejects any engine whose
// Montgomery parameter is not the array's R = 2^(l+2).
TEST(PairedModExp, RejectsUnpairableBackends) {
  const BigUInt n{23};
  InterleavedMmmc array(n, n);
  const auto word = MakeEngine("word-mont", n);
  ASSERT_FALSE(word->Caps().pairable_streams);
  EXPECT_THROW(PairedModExp(*word, BigUInt{2}, BigUInt{3}, *word, BigUInt{2},
                            BigUInt{3}),
               std::invalid_argument);
  EXPECT_THROW(PairedModExp(*word, BigUInt{2}, BigUInt{3}, *word, BigUInt{2},
                            BigUInt{3}, &array),
               std::invalid_argument);
}

TEST(PairedModExp, ChargesPairCyclesAndBeatsSequentialIssue) {
  auto rng = test::TestRng();
  const std::size_t bits = 32;
  const BigUInt n = rng.OddExactBits(bits);
  const auto engine = MakeEngine("bit-serial", n);
  const std::size_t l = engine->l();
  const BigUInt base_a = rng.Below(n), base_b = rng.Below(n);
  const BigUInt exp_a = rng.BalancedExactBits(bits);
  const BigUInt exp_b = rng.BalancedExactBits(bits);
  const auto paired =
      PairedModExp(*engine, base_a, exp_a, *engine, base_b, exp_b);

  // Cycle identity: every paired issue costs 3l+5, every single 3l+4.
  EXPECT_EQ(paired.stats.engine_cycles,
            paired.stats.paired_issues * PairedMultiplyCycles(l) +
                paired.stats.single_issues * MultiplyCycles(l));
  // The shorter stream is fully paired: issue counts add up to both jobs'
  // MMM totals.
  const std::uint64_t ops_a = paired.stats_a.mmm_invocations;
  const std::uint64_t ops_b = paired.stats_b.mmm_invocations;
  EXPECT_EQ(paired.stats.paired_issues, std::min(ops_a, ops_b));
  EXPECT_EQ(paired.stats.single_issues, std::max(ops_a, ops_b) -
                                            std::min(ops_a, ops_b));
  // Against sequential issue of the same MMMs, pairing approaches 2x.
  const std::uint64_t sequential = (ops_a + ops_b) * MultiplyCycles(l);
  EXPECT_LT(paired.stats.engine_cycles, sequential);
  const double speedup = static_cast<double>(sequential) /
                         static_cast<double>(paired.stats.engine_cycles);
  EXPECT_GT(speedup, 1.8);
}

TEST(PairedModExp, EdgeExponents) {
  auto rng = test::TestRng();
  const BigUInt n = rng.OddExactBits(16);
  const auto engine = MakeEngine("bit-serial", n);
  const BigUInt base = rng.Below(n);
  // Zero exponent on one channel: that stream contributes no MMMs and the
  // partner runs entirely single-issue.
  const auto zero_side =
      PairedModExp(*engine, base, BigUInt{0}, *engine, base, BigUInt{5});
  EXPECT_TRUE(zero_side.a.IsOne());
  EXPECT_EQ(zero_side.b, BigUInt::ModExp(base, BigUInt{5}, n));
  EXPECT_EQ(zero_side.stats.paired_issues, 0u);
  // Both zero: no MMM at all.
  const auto both_zero =
      PairedModExp(*engine, base, BigUInt{0}, *engine, base, BigUInt{0});
  EXPECT_EQ(both_zero.stats.engine_cycles, 0u);
  // exponent = 1 still round-trips through the Montgomery domain.
  const auto one =
      PairedModExp(*engine, base, BigUInt{1}, *engine, base, BigUInt{1});
  EXPECT_EQ(one.a, base);
  EXPECT_EQ(one.b, base);
}

TEST(PairedModExp, RejectsUnequalLengths) {
  const auto engine_a = MakeEngine("bit-serial", BigUInt{23});
  const auto engine_b = MakeEngine("bit-serial", BigUInt{257});
  EXPECT_THROW(PairedModExp(*engine_a, BigUInt{2}, BigUInt{3}, *engine_b,
                            BigUInt{2}, BigUInt{3}),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// ExpService: property/stress suite
// ---------------------------------------------------------------------------

struct StressJob {
  std::size_t modulus_index;
  BigUInt base;
  BigUInt exponent;
};

// 10k randomized jobs from multiple submitter threads over a pool of mixed
// moduli (duplicate bit lengths so opportunistic pairing fires), every
// result checked bit-for-bit against the scalar Exponentiator oracle.
TEST(ExpService, StressManyThreadedJobsMatchScalarOracle) {
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kJobsPerThread = 2500;

  // Modulus pool: two distinct moduli per bit length plus one duplicated
  // entry (same BigUInt twice) so the cache sees repeated keys.
  auto rng = test::TestRng();
  std::vector<BigUInt> moduli;
  for (const std::size_t bits : {8u, 16u, 24u, 32u, 48u, 64u}) {
    moduli.push_back(rng.OddExactBits(bits));
    moduli.push_back(rng.OddExactBits(bits));
  }
  moduli.push_back(moduli[0]);  // duplicate key

  ExpService::Options options;
  options.workers = 4;
  options.engine_cache_capacity = 6;  // smaller than the pool: forces churn
  ExpService service(options);

  std::vector<std::vector<StressJob>> jobs(kThreads);
  std::vector<std::vector<std::future<ExpService::Result>>> futures(kThreads);
  for (auto& lane : futures) lane.resize(kJobsPerThread);

  std::vector<std::thread> submitters;
  for (std::size_t t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      RandomBigUInt thread_rng(test::TestSeed(t + 1));
      for (std::size_t j = 0; j < kJobsPerThread; ++j) {
        StressJob job;
        job.modulus_index =
            static_cast<std::size_t>(thread_rng.Engine().NextBelow(
                static_cast<std::uint64_t>(moduli.size())));
        const BigUInt& n = moduli[job.modulus_index];
        job.base = thread_rng.Below(n << 1);  // also exercises base >= n
        switch (thread_rng.Engine().NextBelow(8)) {
          case 0:
            job.exponent = BigUInt{0};
            break;
          case 1:
            job.exponent = BigUInt{1};
            break;
          case 2:
            // max-bit exponent: all ones at the modulus length.
            job.exponent = BigUInt::PowerOfTwo(n.BitLength()) - BigUInt{1};
            break;
          default:
            job.exponent = thread_rng.Below(n);
            break;
        }
        futures[t][j] = service.Submit(n, job.base, job.exponent);
        jobs[t].push_back(std::move(job));
      }
    });
  }
  for (std::thread& submitter : submitters) submitter.join();
  service.Wait();

  // Scalar oracle, one engine per modulus (precomputation paid once).
  std::vector<Exponentiator> oracles;
  oracles.reserve(moduli.size());
  for (const BigUInt& n : moduli) oracles.emplace_back(n);
  for (std::size_t t = 0; t < kThreads; ++t) {
    for (std::size_t j = 0; j < kJobsPerThread; ++j) {
      const StressJob& job = jobs[t][j];
      const ExpService::Result result = futures[t][j].get();
      ASSERT_EQ(result.value,
                oracles[job.modulus_index].ModExp(job.base, job.exponent))
          << "thread " << t << " job " << j;
    }
  }

  const auto counters = service.Snapshot();
  EXPECT_EQ(counters.jobs_submitted, kThreads * kJobsPerThread);
  EXPECT_EQ(counters.jobs_completed, kThreads * kJobsPerThread);
  // With duplicate bit lengths queued from 4 threads, pairing must fire.
  EXPECT_GT(counters.pair_issues, 0u);
  // Repeated moduli must hit the engine cache, and the pool exceeding the
  // capacity must evict.
  EXPECT_GT(counters.engine_cache_hits, 0u);
  EXPECT_GT(counters.engine_cache_evictions, 0u);
}

// Paired (dual-channel) and unpaired execution must agree bit for bit.
TEST(ExpService, PairedAndUnpairedAreBitIdentical) {
  auto rng = test::TestRng();
  std::vector<BigUInt> moduli;
  for (const std::size_t bits : {16u, 16u, 32u, 32u}) {
    moduli.push_back(rng.OddExactBits(bits));
  }
  constexpr std::size_t kJobs = 200;
  std::vector<StressJob> jobs;
  for (std::size_t j = 0; j < kJobs; ++j) {
    StressJob job;
    job.modulus_index = static_cast<std::size_t>(
        rng.Engine().NextBelow(static_cast<std::uint64_t>(moduli.size())));
    const BigUInt& n = moduli[job.modulus_index];
    job.base = rng.Below(n);
    job.exponent = rng.Below(n);
    jobs.push_back(std::move(job));
  }

  const auto run = [&](bool enable_pairing, std::size_t workers) {
    ExpService::Options options;
    options.workers = workers;
    options.enable_pairing = enable_pairing;
    ExpService service(options);
    std::vector<std::future<ExpService::Result>> futures;
    futures.reserve(kJobs);
    for (const StressJob& job : jobs) {
      futures.push_back(service.Submit(moduli[job.modulus_index], job.base,
                                       job.exponent));
    }
    std::vector<BigUInt> values;
    values.reserve(kJobs);
    std::uint64_t paired_jobs = 0;
    for (auto& future : futures) {
      ExpService::Result result = future.get();
      if (result.paired) ++paired_jobs;
      values.push_back(std::move(result.value));
    }
    return std::pair<std::vector<BigUInt>, std::uint64_t>(std::move(values),
                                                          paired_jobs);
  };

  const auto [paired_values, paired_count] = run(/*enable_pairing=*/true, 2);
  const auto [unpaired_values, unpaired_count] =
      run(/*enable_pairing=*/false, 1);
  EXPECT_GT(paired_count, 0u);
  EXPECT_EQ(unpaired_count, 0u);
  ASSERT_EQ(paired_values.size(), unpaired_values.size());
  for (std::size_t j = 0; j < kJobs; ++j) {
    EXPECT_EQ(paired_values[j], unpaired_values[j]) << "job " << j;
  }
}

TEST(ExpService, BondedPairReportsPairCycleAccounting) {
  auto rng = test::TestRng();
  const std::size_t bits = 48;
  const BigUInt n_a = rng.OddExactBits(bits);
  const BigUInt n_b = rng.OddExactBits(bits);
  ExpService::Options options;
  options.workers = 1;
  ExpService service(options);
  auto [future_a, future_b] =
      service.SubmitPair(n_a, rng.Below(n_a), rng.BalancedExactBits(bits),
                         n_b, rng.Below(n_b), rng.BalancedExactBits(bits));
  const ExpService::Result result_a = future_a.get();
  const ExpService::Result result_b = future_b.get();
  EXPECT_TRUE(result_a.paired);
  EXPECT_TRUE(result_b.paired);
  // Both report the same issue group, charged 3l+5 per MMM pair.
  EXPECT_EQ(result_a.stats.engine_cycles, result_b.stats.engine_cycles);
  EXPECT_EQ(result_a.stats.paired_issues, result_b.stats.paired_issues);
  EXPECT_GT(result_a.stats.paired_issues, 0u);
  EXPECT_EQ(result_a.stats.engine_cycles,
            result_a.stats.paired_issues * PairedMultiplyCycles(bits) +
                result_a.stats.single_issues * MultiplyCycles(bits));
  // And the pair beats running its MMMs sequentially.
  const std::uint64_t sequential =
      (result_a.stats.mmm_invocations + result_b.stats.mmm_invocations) *
      MultiplyCycles(bits);
  EXPECT_LT(result_a.stats.engine_cycles, sequential);
}

TEST(ExpService, SubmitBatchAndCallbacks) {
  auto rng = test::TestRng();
  const BigUInt n = rng.OddExactBits(32);
  std::vector<BigUInt> bases, exponents;
  for (int j = 0; j < 16; ++j) {
    bases.push_back(rng.Below(n));
    exponents.push_back(rng.Below(n));
  }
  ExpService service;
  auto futures = service.SubmitBatch(n, bases, exponents);
  std::atomic<int> callbacks{0};
  for (int j = 0; j < 4; ++j) {
    service.Submit(n, bases[j], exponents[j],
                   [&callbacks](const ExpService::Result&) { ++callbacks; });
  }
  service.Wait();
  EXPECT_EQ(callbacks.load(), 4);
  ASSERT_EQ(futures.size(), bases.size());
  Exponentiator oracle(n);
  for (std::size_t j = 0; j < futures.size(); ++j) {
    EXPECT_EQ(futures[j].get().value, oracle.ModExp(bases[j], exponents[j]));
  }
  EXPECT_THROW(service.SubmitBatch(n, bases, {}), std::invalid_argument);
}

TEST(ExpService, RejectsBadModuli) {
  ExpService service;
  EXPECT_THROW(service.Submit(BigUInt{24}, BigUInt{2}, BigUInt{3}),
               std::invalid_argument);
  EXPECT_THROW(service.Submit(BigUInt{1}, BigUInt{2}, BigUInt{3}),
               std::invalid_argument);
  EXPECT_THROW(service.SubmitPair(BigUInt{23}, BigUInt{2}, BigUInt{3},
                                  BigUInt{8}, BigUInt{2}, BigUInt{3}),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Engine selection through the registry
// ---------------------------------------------------------------------------

TEST(ExpService, NamedBackendsProduceIdenticalResults) {
  auto rng = test::TestRng();
  const BigUInt n = rng.OddExactBits(10);
  const BigUInt base = rng.Below(n);
  const BigUInt exponent = rng.ExactBits(10);
  const BigUInt want = BigUInt::ModExp(base, exponent, n);
  for (const char* name :
       {"bit-serial", "word-mont", "high-radix", "blum-paar", "mmmc"}) {
    ExpService::Options options;
    options.workers = 1;
    options.engine_name = name;
    ExpService service(options);
    std::vector<std::future<ExpService::Result>> futures;
    for (int j = 0; j < 4; ++j) {
      futures.push_back(service.Submit(n, base, exponent));
    }
    for (auto& future : futures) {
      EXPECT_EQ(future.get().value, want) << name;
    }
    // The pairing credit belongs to the array-schedule family only; a
    // word-serial backend silently falls back to solo issue.
    if (!EngineRegistry::Global().Find(name)->caps.pairable_streams) {
      EXPECT_EQ(service.Snapshot().pair_issues, 0u) << name;
    }
  }
}

TEST(ExpService, RejectsUnknownOrCapabilityMismatchedEngine) {
  ExpService::Options unknown;
  unknown.engine_name = "no-such-engine";
  EXPECT_THROW(ExpService{unknown}, std::invalid_argument);

  ExpService::Options gf2_on_gfp_backend;
  gf2_on_gfp_backend.engine_name = "word-mont";
  gf2_on_gfp_backend.engine_options.field = EngineField::kGf2;
  EXPECT_THROW(ExpService{gf2_on_gfp_backend}, std::invalid_argument);
}

// A GF(2^m) service: the modulus is the field polynomial and every job is
// a field exponentiation — here Fermat inversions checked against the
// software field, exactly what BinaryCurve::ScalarMulBatch submits.
TEST(ExpService, Gf2FieldExponentiationService) {
  const BigUInt f{0x11b};  // AES field
  const bignum::Gf2Field field(f);
  ExpService::Options options;
  options.engine_options.field = EngineField::kGf2;
  ExpService service(options);
  auto rng = test::TestRng();
  const BigUInt inv_exponent = BigUInt::PowerOfTwo(8) - BigUInt{2};
  for (int j = 0; j < 8; ++j) {
    BigUInt a = rng.Below(BigUInt::PowerOfTwo(8));
    if (a.IsZero()) a = BigUInt{1};
    EXPECT_EQ(service.Submit(f, a, inv_exponent).get().value,
              field.Inverse(a));
  }
  // Same-length polynomial jobs pair on the dual-field array like any
  // other equal-l jobs.
  std::vector<BigUInt> bases, exponents;
  for (int j = 1; j <= 8; ++j) {
    bases.push_back(BigUInt{static_cast<std::uint64_t>(j * 17 % 255 + 1)});
    exponents.push_back(inv_exponent);
  }
  for (auto& future : service.SubmitBatch(f, bases, exponents)) future.get();
  EXPECT_GT(service.Snapshot().pair_issues, 0u);
  // Field-polynomial validation: f(0) must be 1 and deg(f) >= 2.
  EXPECT_THROW(service.Submit(BigUInt{0x12}, BigUInt{1}, BigUInt{1}),
               std::invalid_argument);
  EXPECT_THROW(service.Submit(BigUInt{0x3}, BigUInt{1}, BigUInt{1}),
               std::invalid_argument);
}

TEST(ExpService, EngineCacheReusesHotModulus) {
  auto rng = test::TestRng();
  const BigUInt n = rng.OddExactBits(32);
  ExpService::Options options;
  options.workers = 1;
  options.engine_cache_capacity = 2;
  ExpService service(options);
  for (int j = 0; j < 6; ++j) {
    service.Submit(n, rng.Below(n), rng.Below(n)).get();
  }
  auto counters = service.Snapshot();
  EXPECT_EQ(counters.engine_cache_misses, 1u);
  EXPECT_EQ(counters.engine_cache_hits, 5u);
  // Rotating through more moduli than the cache holds must evict.
  for (const std::size_t bits : {16u, 24u, 40u}) {
    const BigUInt other = rng.OddExactBits(bits);
    service.Submit(other, rng.Below(other), rng.Below(other)).get();
  }
  counters = service.Snapshot();
  EXPECT_GT(counters.engine_cache_evictions, 0u);
}

// ---------------------------------------------------------------------------
// Per-job options: engine overrides and exponent blinding
// ---------------------------------------------------------------------------

// Mixed-engine stress: jobs carrying per-job backend overrides (including
// none) interleave on one service from several submitter threads; every
// result must match the scalar oracle regardless of which datapath served
// it, and overridden engines must key the cache separately.
TEST(ExpServiceJobOptions, MixedEngineStressMatchesScalarOracle) {
  constexpr std::size_t kThreads = 3;
  constexpr std::size_t kJobsPerThread = 120;
  const std::array<const char*, 4> engines = {"", "bit-serial", "word-mont",
                                              "mmmc"};
  auto rng = test::TestRng();
  std::vector<BigUInt> moduli;
  for (const std::size_t bits : {12u, 16u, 16u, 24u}) {
    moduli.push_back(rng.OddExactBits(bits));
  }

  ExpService::Options options;
  options.workers = 3;
  ExpService service(options);

  struct MixedJob {
    std::size_t modulus_index = 0;
    std::size_t engine_index = 0;
    BigUInt base;
    BigUInt exponent;
  };
  std::vector<std::vector<MixedJob>> jobs(kThreads);
  std::vector<std::vector<std::future<ExpService::Result>>> futures(kThreads);
  for (auto& lane : futures) lane.resize(kJobsPerThread);
  std::vector<std::thread> submitters;
  for (std::size_t t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      RandomBigUInt thread_rng(test::TestSeed(t + 17));
      for (std::size_t j = 0; j < kJobsPerThread; ++j) {
        MixedJob job;
        job.modulus_index = static_cast<std::size_t>(
            thread_rng.Engine().NextBelow(moduli.size()));
        job.engine_index = static_cast<std::size_t>(
            thread_rng.Engine().NextBelow(engines.size()));
        const BigUInt& n = moduli[job.modulus_index];
        job.base = thread_rng.Below(n);
        job.exponent = thread_rng.Below(n);
        ExpService::JobOptions job_options;
        job_options.engine_name = engines[job.engine_index];
        futures[t][j] = service.Submit(n, job.base, job.exponent,
                                       std::move(job_options));
        jobs[t].push_back(std::move(job));
      }
    });
  }
  for (std::thread& submitter : submitters) submitter.join();
  service.Wait();

  std::vector<Exponentiator> oracles;
  oracles.reserve(moduli.size());
  for (const BigUInt& n : moduli) oracles.emplace_back(n);
  for (std::size_t t = 0; t < kThreads; ++t) {
    for (std::size_t j = 0; j < kJobsPerThread; ++j) {
      const MixedJob& job = jobs[t][j];
      const ExpService::Result result = futures[t][j].get();
      ASSERT_EQ(result.value,
                oracles[job.modulus_index].ModExp(job.base, job.exponent))
          << "thread " << t << " job " << j << " engine '"
          << engines[job.engine_index] << "'";
      // word-mont has no pairable streams: such a job must never have
      // been co-scheduled onto a dual-channel array.
      if (std::string_view(engines[job.engine_index]) == "word-mont") {
        EXPECT_FALSE(result.paired);
      }
    }
  }
  const auto counters = service.Snapshot();
  EXPECT_EQ(counters.jobs_completed, kThreads * kJobsPerThread);
  // Pairable jobs of equal length still pair around the solo overrides.
  EXPECT_GT(counters.pair_issues, 0u);
}

TEST(ExpServiceJobOptions, OverrideFallsBackToServiceDefault) {
  auto rng = test::TestRng();
  const BigUInt n = rng.OddExactBits(24);
  ExpService::Options options;
  options.workers = 1;
  options.engine_name = "high-radix";
  ExpService service(options);
  const BigUInt base = rng.Below(n);
  const BigUInt exponent = rng.Below(n);
  // Empty override = the service's engine; explicit override = its own.
  const BigUInt via_default =
      service.Submit(n, base, exponent, ExpService::JobOptions{}).get().value;
  ExpService::JobOptions override_options;
  override_options.engine_name = "mmmc";
  const BigUInt via_override =
      service.Submit(n, base, exponent, override_options).get().value;
  EXPECT_EQ(via_default, via_override);
  EXPECT_EQ(via_default, Exponentiator(n).ModExp(base, exponent));
  // Both backends (and only those) populated the cache.
  const auto counters = service.Snapshot();
  EXPECT_EQ(counters.engine_cache_misses, 2u);
}

// A non-pairable *default* backend must not disable pairing for jobs
// whose override selects a pairable one: the word-serial default issues
// solo (its jobs carry solo queue keys), while bit-serial override jobs
// of equal length still co-schedule.
TEST(ExpServiceJobOptions, PairableOverridesPairOnNonPairableDefault) {
  auto rng = test::TestRng();
  const BigUInt n = rng.OddExactBits(20);
  ExpService::Options options;
  options.workers = 1;
  options.engine_name = "word-mont";
  ExpService service(options);
  ExpService::JobOptions pairable;
  pairable.engine_name = "bit-serial";
  Exponentiator oracle(n);
  std::vector<BigUInt> bases, exponents;
  std::vector<std::future<ExpService::Result>> defaults, overridden;
  for (int j = 0; j < 60; ++j) {
    bases.push_back(rng.Below(n));
    exponents.push_back(rng.Below(n));
    defaults.push_back(service.Submit(n, bases.back(), exponents.back()));
    overridden.push_back(
        service.Submit(n, bases.back(), exponents.back(), pairable));
  }
  for (int j = 0; j < 60; ++j) {
    const ExpService::Result via_default = defaults[j].get();
    const ExpService::Result via_override = overridden[j].get();
    const BigUInt want = oracle.ModExp(bases[j], exponents[j]);
    ASSERT_EQ(via_default.value, want);
    ASSERT_EQ(via_override.value, want);
    EXPECT_FALSE(via_default.paired) << "word-serial default must issue solo";
  }
  EXPECT_GT(service.Snapshot().pair_issues, 0u)
      << "equal-length pairable overrides must co-schedule";
}

// A bonded SubmitPair on a non-pairable backend pops as a bonded group
// but executes as two solo issues — and the counters must say so rather
// than report fictitious dual-channel throughput.
TEST(ExpServiceJobOptions, BondedPairOnNonPairableBackendCountsSoloIssues) {
  auto rng = test::TestRng();
  const BigUInt n_a = rng.OddExactBits(16);
  const BigUInt n_b = rng.OddExactBits(16);
  ExpService::Options options;
  options.workers = 1;
  options.engine_name = "word-mont";
  ExpService service(options);
  const BigUInt base = BigUInt{7}, exponent = BigUInt{13};
  auto [first, second] = service.SubmitPair(n_a, base, exponent, n_b, base,
                                            exponent);
  const ExpService::Result result_a = first.get();
  const ExpService::Result result_b = second.get();
  EXPECT_EQ(result_a.value, BigUInt::ModExp(base, exponent, n_a));
  EXPECT_EQ(result_b.value, BigUInt::ModExp(base, exponent, n_b));
  EXPECT_FALSE(result_a.paired);
  EXPECT_FALSE(result_b.paired);
  const auto counters = service.Snapshot();
  EXPECT_EQ(counters.pair_issues, 0u);
  EXPECT_EQ(counters.single_issues, 2u);
}

TEST(ExpServiceJobOptions, RejectsUnknownOrMismatchedOverride) {
  auto rng = test::TestRng();
  const BigUInt n = rng.OddExactBits(16);
  ExpService service;
  ExpService::JobOptions bad_name;
  bad_name.engine_name = "no-such-engine";
  EXPECT_THROW(service.Submit(n, BigUInt{2}, BigUInt{3}, bad_name),
               std::invalid_argument);
  ExpService::JobOptions blind_no_bits;
  blind_no_bits.exponent_blind_order = BigUInt{6};
  blind_no_bits.exponent_blind_bits = 0;
  EXPECT_THROW(service.Submit(n, BigUInt{2}, BigUInt{3}, blind_no_bits),
               std::invalid_argument);
  // GF(2^m) service: a GF(p)-only override must be rejected at Submit.
  ExpService::Options gf2_options;
  gf2_options.engine_name = "bit-serial";
  gf2_options.engine_options.field = EngineField::kGf2;
  ExpService gf2_service(gf2_options);
  const BigUInt f{0b1011};  // x^3 + x + 1
  ExpService::JobOptions gfp_only;
  gfp_only.engine_name = "word-mont";
  EXPECT_THROW(gf2_service.Submit(f, BigUInt{0b10}, BigUInt{3}, gfp_only),
               std::invalid_argument);
}

// Exponent blinding through the service: same results as unblinded jobs
// (the blinding order is a multiple of every base's order), randomized
// schedule visible as extra MMM invocations in the stats.
TEST(ExpServiceJobOptions, ExponentBlindingSameValuesMoreOperations) {
  auto rng = test::TestRng();
  const crypto::RsaKeyPair key = crypto::GenerateRsaKey(64, rng);
  const BigUInt lambda = crypto::RsaLambda(key);
  ExpService service;
  for (int trial = 0; trial < 4; ++trial) {
    const BigUInt base = rng.Below(key.n);
    const BigUInt exponent = rng.Below(key.n);
    const ExpService::Result plain =
        service.Submit(key.n, base, exponent).get();
    ExpService::JobOptions blind;
    blind.exponent_blind_order = lambda;
    blind.exponent_blind_bits = 12;
    const ExpService::Result blinded =
        service.Submit(key.n, base, exponent, blind).get();
    EXPECT_EQ(blinded.value, plain.value);
    EXPECT_GT(blinded.stats.mmm_invocations, plain.stats.mmm_invocations);
  }
}

// ---------------------------------------------------------------------------
// Crypto entry points driving the service end to end
// ---------------------------------------------------------------------------

TEST(ExpServiceCrypto, RsaPrivateCrtPairedMatchesAndSavesCycles) {
  auto rng = test::TestRng();
  const crypto::RsaKeyPair key = crypto::GenerateRsaKey(128, rng);
  for (int trial = 0; trial < 3; ++trial) {
    const BigUInt m = rng.Below(key.n);
    const BigUInt c = crypto::RsaPublic(key, m);
    EngineStats stats;
    EXPECT_EQ(crypto::RsaPrivateCrtPaired(key, c, &stats), m);
    EXPECT_GT(stats.paired_issues, 0u);
    const std::size_t l = key.p.BitLength();
    EXPECT_EQ(stats.engine_cycles,
              stats.paired_issues * PairedMultiplyCycles(l) +
                  stats.single_issues * MultiplyCycles(l));
  }
}

TEST(ExpServiceCrypto, RsaSignBatchMatchesScalarPaths) {
  auto rng = test::TestRng();
  const crypto::RsaKeyPair key = crypto::GenerateRsaKey(96, rng);
  std::vector<BigUInt> messages;
  for (int j = 0; j < 12; ++j) messages.push_back(rng.Below(key.n));
  ExpService service;
  const std::vector<BigUInt> signatures =
      crypto::RsaSignBatch(key, messages, service);
  ASSERT_EQ(signatures.size(), messages.size());
  for (std::size_t j = 0; j < messages.size(); ++j) {
    EXPECT_EQ(signatures[j], crypto::RsaPrivate(key, messages[j]));
    EXPECT_EQ(signatures[j], crypto::RsaPrivateCrt(key, messages[j]));
  }
  // The pipelined CRT submits halves independently; the scheduler still
  // pairs the equal-length streams (same message or across messages).
  EXPECT_GT(service.Snapshot().pair_issues, 0u);
}

TEST(ExpServiceCrypto, EccScalarMulBatchMatchesScalarMul) {
  const crypto::Curve tiny(crypto::CurveParams::Tiny97());
  ExpService service;
  std::vector<BigUInt> scalars;
  for (std::uint64_t k = 0; k < 9; ++k) scalars.push_back(BigUInt{k});
  const auto batch = tiny.ScalarMulBatch(scalars, tiny.Generator(), service);
  ASSERT_EQ(batch.size(), scalars.size());
  for (std::size_t j = 0; j < scalars.size(); ++j) {
    EXPECT_EQ(batch[j], tiny.ScalarMul(scalars[j], tiny.Generator()))
        << "k = " << j;
  }
  // Infinity input maps to infinity outputs.
  const auto at_infinity =
      tiny.ScalarMulBatch(scalars, crypto::AffinePoint::Infinity(), service);
  for (const crypto::AffinePoint& point : at_infinity) {
    EXPECT_TRUE(point.infinity);
  }

  auto rng = test::TestRng();
  const crypto::Curve p192(crypto::CurveParams::Secp192r1());
  std::vector<BigUInt> big_scalars;
  for (int j = 0; j < 3; ++j) {
    big_scalars.push_back(rng.Below(p192.Params().order));
  }
  const auto big_batch =
      p192.ScalarMulBatch(big_scalars, p192.Generator(), service);
  for (std::size_t j = 0; j < big_scalars.size(); ++j) {
    EXPECT_EQ(big_batch[j], p192.ScalarMul(big_scalars[j], p192.Generator()));
  }
}

// ---------------------------------------------------------------------------
// DeterministicExecutor: the virtual-clock scheduler harness.  Every
// hold/steal/unpair decision replays from the submit trace alone, so
// these tests pin down scheduling *behaviour*, not just results.
// ---------------------------------------------------------------------------

// Sums the array-busy virtual cycles across records, counting each
// issue group (a paired group shares one start/finish) exactly once.
std::uint64_t BusyCycles(
    const std::vector<DeterministicExecutor::JobRecord>& records) {
  std::set<std::tuple<std::size_t, std::uint64_t, std::uint64_t>> groups;
  for (const auto& record : records) {
    groups.emplace(record.worker, record.start_tick, record.finish_tick);
  }
  std::uint64_t busy = 0;
  for (const auto& [worker, start, finish] : groups) busy += finish - start;
  return busy;
}

// Virtual duration of one solo job on `n` under the default backend.
std::uint64_t CalibrateSoloTicks(const BigUInt& n, const BigUInt& base,
                                 const BigUInt& exponent) {
  ExpService::Options options;
  options.workers = 1;
  DeterministicExecutor calibrate(options);
  calibrate.SubmitAt(0, n, base, exponent);
  calibrate.RunUntilIdle();
  const auto& record = calibrate.Records().at(0);
  return record.finish_tick - record.start_tick;
}

TEST(DeterministicExecutor, VirtualClockDrivesHoldPairAndUnpairDecisions) {
  auto rng = test::TestRng();
  const BigUInt n = rng.OddExactBits(48);
  const BigUInt base = rng.Below(n);
  const BigUInt exponent = rng.Below(n);
  const std::uint64_t solo_ticks = CalibrateSoloTicks(n, base, exponent);
  ASSERT_GT(solo_ticks, 0u);

  ExpService::Options options;
  options.workers = 1;
  options.unpair_timeout = solo_ticks / 4;
  DeterministicExecutor exec(options);
  // t=0: idle pool, dispatches immediately and occupies the one worker.
  exec.SubmitAt(0, n, base, exponent);
  // Two fast arrivals make the key hot; the pool is busy, so the lone
  // third arrival is held and pairs when the fourth shows up in time.
  exec.SubmitAt(10, n, base, exponent);
  exec.SubmitAt(20, n, base, exponent);
  // A fourth arrival after the pair forms is held again — and this
  // time no partner ever comes, so the age timeout releases it solo.
  exec.SubmitAt(30, n, base, exponent);
  exec.RunUntilIdle();

  const auto counters = exec.Snapshot();
  EXPECT_EQ(counters.jobs_completed, 4u);
  ASSERT_NE(exec.SchedulerStats(), nullptr);
  EXPECT_EQ(exec.SchedulerStats()->holds, 2u);
  EXPECT_EQ(exec.SchedulerStats()->hold_pairs, 1u);
  EXPECT_EQ(exec.SchedulerStats()->unpair_timeouts, 1u);

  const auto& records = exec.Records();
  ASSERT_EQ(records.size(), 4u);
  // Job ids 2 and 3 form the hold-pair; job 4 is the timeout victim.
  EXPECT_FALSE(records[0].paired);
  EXPECT_TRUE(records[1].paired);
  EXPECT_TRUE(records[2].paired);
  EXPECT_EQ(records[1].start_tick, records[2].start_tick);
  EXPECT_FALSE(records[3].paired);
  EXPECT_TRUE(records[3].unpaired_by_timeout);
  // The timeout victim cannot start before its hold deadline expires.
  EXPECT_GE(records[3].start_tick, 30 + options.unpair_timeout);

  // All four virtual runs computed the real answer.
  const BigUInt expected = Exponentiator(n).ModExp(base, exponent);
  // (Submit order == record order: ids are assigned at SubmitAt.)
  for (const auto& record : records) {
    EXPECT_GT(record.finish_tick, record.start_tick);
    EXPECT_GE(record.start_tick, record.submit_tick);
  }
  DeterministicExecutor check(options);
  auto future = check.SubmitAt(0, n, base, exponent);
  check.RunUntilIdle();
  EXPECT_EQ(future.get().value, expected);
}

TEST(DeterministicExecutor, IdleWorkersStealFromLoadedDeques) {
  auto rng = test::TestRng();
  // Wildly uneven job sizes: the worker that lands the small jobs
  // drains its deque early and must steal the big ones' backlog.
  const BigUInt small = rng.OddExactBits(12);
  const BigUInt big = rng.OddExactBits(64);
  ExpService::Options options;
  options.workers = 4;
  DeterministicExecutor exec(options);
  std::vector<std::future<ExpService::Result>> futures;
  for (int j = 0; j < 24; ++j) {
    const BigUInt& n = (j % 4 == 0) ? small : big;
    futures.push_back(exec.SubmitAt(0, n, rng.Below(n), rng.Below(n)));
  }
  exec.RunUntilIdle();
  ASSERT_NE(exec.SchedulerStats(), nullptr);
  EXPECT_GT(exec.SchedulerStats()->steals, 0u);
  bool any_stolen_record = false;
  for (const auto& record : exec.Records()) {
    any_stolen_record = any_stolen_record || record.stolen;
  }
  EXPECT_TRUE(any_stolen_record);
  for (auto& future : futures) future.get();

  // The same burst with stealing disabled issues every group from its
  // own deque.
  ExpService::Options fixed = options;
  fixed.work_stealing = false;
  DeterministicExecutor pinned(fixed);
  for (int j = 0; j < 24; ++j) {
    const BigUInt& n = (j % 4 == 0) ? small : big;
    pinned.SubmitAt(0, n, rng.Below(n), rng.Below(n));
  }
  pinned.RunUntilIdle();
  EXPECT_EQ(pinned.SchedulerStats()->steals, 0u);
  // Stealing can only help the virtual makespan.
  EXPECT_LE(exec.Now(), pinned.Now());
}

TEST(DeterministicExecutor, ReplayFromSameTraceIsBitIdentical) {
  const auto run = [] {
    auto rng = test::TestRng();
    std::vector<BigUInt> moduli;
    for (const std::size_t bits : {24u, 24u, 48u}) {
      moduli.push_back(rng.OddExactBits(bits));
    }
    ExpService::Options options;
    options.workers = 3;
    options.unpair_timeout = 30'000;
    DeterministicExecutor exec(options);
    std::uint64_t tick = 0;
    for (int j = 0; j < 40; ++j) {
      const BigUInt& n = moduli[static_cast<std::size_t>(
          rng.Engine().NextBelow(moduli.size()))];
      exec.SubmitAt(tick, n, rng.Below(n), rng.Below(n));
      tick += rng.Engine().NextBelow(20'000);
    }
    exec.RunUntilIdle();
    return std::make_tuple(exec.Records(), exec.Snapshot(), exec.Now());
  };
  const auto [records_a, counters_a, makespan_a] = run();
  const auto [records_b, counters_b, makespan_b] = run();
  EXPECT_EQ(makespan_a, makespan_b);
  EXPECT_EQ(counters_a.pair_issues, counters_b.pair_issues);
  EXPECT_EQ(counters_a.steals, counters_b.steals);
  EXPECT_EQ(counters_a.unpair_timeouts, counters_b.unpair_timeouts);
  ASSERT_EQ(records_a.size(), records_b.size());
  for (std::size_t j = 0; j < records_a.size(); ++j) {
    EXPECT_EQ(records_a[j].id, records_b[j].id);
    EXPECT_EQ(records_a[j].start_tick, records_b[j].start_tick);
    EXPECT_EQ(records_a[j].finish_tick, records_b[j].finish_tick);
    EXPECT_EQ(records_a[j].worker, records_b[j].worker);
    EXPECT_EQ(records_a[j].paired, records_b[j].paired);
    EXPECT_EQ(records_a[j].stolen, records_b[j].stolen);
  }
}

// Deadline semantics in virtual time: a job whose deadline expires while
// it is *held for pairing* is released from the hold buffer and cancelled
// at the exact deadline tick — and the whole schedule, including the
// cancellation, replays bit-identically.
TEST(DeterministicExecutor, DeadlineCancelsHeldJobAtExactTick) {
  auto rng = test::TestRng();
  const BigUInt n = rng.OddExactBits(48);
  const BigUInt base = rng.Below(n);
  const BigUInt exponent = rng.Below(n);
  const std::uint64_t solo_ticks = CalibrateSoloTicks(n, base, exponent);
  ASSERT_GT(solo_ticks, 8u);

  const auto run = [&] {
    ExpService::Options options;
    options.workers = 1;
    // Hold window far beyond the deadline: without cancellation the held
    // job would wait this long for a partner.
    options.unpair_timeout = solo_ticks * 4;
    DeterministicExecutor exec(options);
    // t=0 occupies the one worker; two fast same-key arrivals make the
    // key hot and pair with each other; the fourth arrival is then held
    // for a partner that never comes.
    exec.SubmitAt(0, n, base, exponent);
    exec.SubmitAt(10, n, base, exponent);
    exec.SubmitAt(20, n, base, exponent);
    const std::uint64_t deadline = 30 + solo_ticks / 2;
    ExpJobOptions doomed;
    doomed.deadline = deadline;
    bool callback_fired = false;
    bool callback_cancelled = false;
    auto future = exec.SubmitAt(30, n, base, exponent, doomed,
                                [&](const ExpService::Result& result) {
                                  callback_fired = true;
                                  callback_cancelled = result.cancelled;
                                });
    exec.RunUntilIdle();

    // The doomed job resolved as cancelled — typed result, not an
    // exception, and its callback still fired.
    auto result = future.get();
    EXPECT_TRUE(result.cancelled);
    EXPECT_TRUE(callback_fired);
    EXPECT_TRUE(callback_cancelled);
    EXPECT_EQ(result.stats.cancelled, 1u);

    const auto counters = exec.Snapshot();
    EXPECT_EQ(counters.jobs_submitted, 4u);
    EXPECT_EQ(counters.deadline_exceeded, 1u);
    // Conservation: submitted == completed + deadline_exceeded.
    EXPECT_EQ(counters.jobs_submitted,
              counters.jobs_completed + counters.deadline_exceeded);
    EXPECT_EQ(exec.SchedulerStats()->cancelled, 1u);

    const auto& records = exec.Records();
    EXPECT_EQ(records.size(), 4u);
    // Records land in completion order; find the doomed job by its id
    // (ids are assigned in SubmitAt order, so it is id 4).
    const auto doomed_record =
        std::find_if(records.begin(), records.end(),
                     [](const auto& record) { return record.id == 4; });
    EXPECT_NE(doomed_record, records.end());
    if (doomed_record != records.end()) {
      EXPECT_TRUE(doomed_record->cancelled);
      // Cancelled at the exact deadline tick, not at the next scheduler
      // poll and not at the unpair timeout.
      EXPECT_EQ(doomed_record->finish_tick, deadline);
    }
    return std::make_pair(exec.Records(), exec.Now());
  };

  const auto [records_a, makespan_a] = run();
  const auto [records_b, makespan_b] = run();
  EXPECT_EQ(makespan_a, makespan_b);
  ASSERT_EQ(records_a.size(), records_b.size());
  for (std::size_t j = 0; j < records_a.size(); ++j) {
    EXPECT_EQ(records_a[j].start_tick, records_b[j].start_tick);
    EXPECT_EQ(records_a[j].finish_tick, records_b[j].finish_tick);
    EXPECT_EQ(records_a[j].cancelled, records_b[j].cancelled);
    EXPECT_EQ(records_a[j].worker, records_b[j].worker);
  }
}

// A deadline that is already in the past at dispatch time cancels the job
// even when a worker is free the moment it arrives (claim-time gate).
TEST(DeterministicExecutor, ExpiredDeadlineCancelsBeforeDispatch) {
  auto rng = test::TestRng();
  const BigUInt n = rng.OddExactBits(32);
  ExpService::Options options;
  options.workers = 2;
  DeterministicExecutor exec(options);
  ExpJobOptions expired;
  expired.deadline = 100;
  auto doomed = exec.SubmitAt(100, n, rng.Below(n), rng.Below(n), expired);
  auto live = exec.SubmitAt(100, n, rng.Below(n), rng.Below(n));
  exec.RunUntilIdle();
  EXPECT_TRUE(doomed.get().cancelled);
  EXPECT_FALSE(live.get().cancelled);
  const auto counters = exec.Snapshot();
  EXPECT_EQ(counters.deadline_exceeded, 1u);
  EXPECT_EQ(counters.jobs_submitted,
            counters.jobs_completed + counters.deadline_exceeded);
}

// Threaded service: the same deadline contract (claim-time cancellation,
// typed result, callback fires, counters conserve) under real threads.
TEST(ExpService, DeadlineCancelledJobResolvesTypedAndConserves) {
  auto rng = test::TestRng();
  const BigUInt n = rng.OddExactBits(64);
  ExpService::Options options;
  options.workers = 2;
  ExpService service(options);
  // A 1-tick (1 ns) deadline is always in the past by the time a worker
  // claims the job.
  ExpJobOptions doomed_options;
  doomed_options.deadline = 1;
  std::atomic<bool> callback_cancelled{false};
  auto doomed = service.Submit(n, rng.Below(n), rng.Below(n), doomed_options,
                               [&](const ExpService::Result& result) {
                                 callback_cancelled = result.cancelled;
                               });
  auto live = service.Submit(n, rng.Below(n), rng.Below(n));
  service.Wait();
  EXPECT_TRUE(doomed.get().cancelled);
  EXPECT_TRUE(callback_cancelled);
  EXPECT_FALSE(live.get().cancelled);
  const auto counters = service.Snapshot();
  EXPECT_EQ(counters.jobs_submitted, 2u);
  EXPECT_EQ(counters.deadline_exceeded, 1u);
  EXPECT_EQ(counters.jobs_submitted,
            counters.jobs_completed + counters.deadline_exceeded);
}

// The acceptance scenario in the small: on sparse same-key traffic that
// keeps the pool moderately loaded, the v1 shared queue almost never
// finds two jobs queued together (workers drain it too fast), while the
// v2 hold-for-pairing converts the same trace into dual-channel pairs.
// Array capacity per job — saturation throughput — must improve >= 1.2x.
TEST(DeterministicExecutor, StealingSchedulerBeatsSharedQueueOnSparseTraffic) {
  auto rng = test::TestRng();
  const BigUInt n = rng.OddExactBits(64);
  const BigUInt base = rng.Below(n);
  const BigUInt exponent = rng.Below(n);
  const std::uint64_t solo_ticks = CalibrateSoloTicks(n, base, exponent);
  const std::uint64_t gap = (solo_ticks * 3) / 5;  // per-worker load ~0.83
  constexpr int kJobs = 60;

  const auto run = [&](SchedulerKind kind) {
    ExpService::Options options;
    options.workers = 2;
    options.scheduler = kind;
    options.unpair_timeout = solo_ticks;
    DeterministicExecutor exec(options);
    for (int j = 0; j < kJobs; ++j) {
      exec.SubmitAt(static_cast<std::uint64_t>(j) * gap, n, base, exponent);
    }
    exec.RunUntilIdle();
    return std::make_pair(exec.Records(), exec.Snapshot());
  };
  const auto [records_v1, counters_v1] = run(SchedulerKind::kSharedQueue);
  const auto [records_v2, counters_v2] = run(SchedulerKind::kStealing);
  EXPECT_EQ(counters_v1.jobs_completed, kJobs);
  EXPECT_EQ(counters_v2.jobs_completed, kJobs);
  // v1 meets an idle worker at almost every arrival: mostly solo issue.
  // v2 pairs the bulk of the trace through held partners.
  EXPECT_GT(counters_v2.pair_issues, 2 * counters_v1.pair_issues);
  const std::uint64_t busy_v1 = BusyCycles(records_v1);
  const std::uint64_t busy_v2 = BusyCycles(records_v2);
  ASSERT_GT(busy_v2, 0u);
  // Jobs per array-cycle: the dual-channel pairs must buy >= 1.2x.
  const double speedup =
      static_cast<double>(busy_v1) / static_cast<double>(busy_v2);
  EXPECT_GE(speedup, 1.2) << "busy_v1=" << busy_v1 << " busy_v2=" << busy_v2;
}

// ---------------------------------------------------------------------------
// Threaded service: bursty multi-tenant stress and shutdown drain
// ---------------------------------------------------------------------------

// Three tenants fire bursts of mixed-size, mixed-engine jobs while a
// fourth runs pipelined-CRT RsaSignBatch against the same pool.  Every
// result must match the scalar oracle and the counters must be truthful.
TEST(ExpService, BurstyMultiTenantStressMatchesOracles) {
  auto rng = test::TestRng();
  std::vector<BigUInt> moduli;
  for (const std::size_t bits : {128u, 128u, 256u, 256u, 512u}) {
    moduli.push_back(rng.OddExactBits(bits));
  }
  const crypto::RsaKeyPair rsa_key = crypto::GenerateRsaKey(128, rng);
  const std::array<const char*, 3> engines = {"", "bit-serial", "word-mont"};

  ExpService::Options options;
  options.workers = 4;
  options.engine_cache_capacity = 4;  // smaller than the modulus pool
  options.unpair_timeout = 100'000;   // 100us: plausible for these sizes
  ExpService service(options);

  constexpr std::size_t kTenants = 3;
  constexpr std::size_t kBursts = 5;
  constexpr std::size_t kBurstJobs = 8;
  struct TenantJob {
    std::size_t modulus_index = 0;
    std::size_t engine_index = 0;
    BigUInt base;
    BigUInt exponent;
  };
  std::vector<std::vector<TenantJob>> jobs(kTenants);
  std::vector<std::vector<std::future<ExpService::Result>>> futures(kTenants);
  std::vector<std::thread> tenants;
  for (std::size_t t = 0; t < kTenants; ++t) {
    tenants.emplace_back([&, t] {
      RandomBigUInt tenant_rng(test::TestSeed(t + 101));
      for (std::size_t burst = 0; burst < kBursts; ++burst) {
        for (std::size_t j = 0; j < kBurstJobs; ++j) {
          TenantJob job;
          job.modulus_index = static_cast<std::size_t>(
              tenant_rng.Engine().NextBelow(moduli.size()));
          job.engine_index = static_cast<std::size_t>(
              tenant_rng.Engine().NextBelow(engines.size()));
          const BigUInt& n = moduli[job.modulus_index];
          job.base = tenant_rng.Below(n);
          job.exponent = tenant_rng.Below(n);
          ExpService::JobOptions job_options;
          job_options.engine_name = engines[job.engine_index];
          futures[t].push_back(service.Submit(n, job.base, job.exponent,
                                              std::move(job_options)));
          jobs[t].push_back(std::move(job));
        }
        // Idle gap between bursts: lets the pool drain so the next
        // burst exercises the idle->burst transition, not a steady
        // backlog.
        std::this_thread::sleep_for(std::chrono::microseconds(300));
      }
    });
  }
  // The RSA tenant interleaves two pipelined-CRT batches.
  std::vector<BigUInt> messages;
  for (int j = 0; j < 6; ++j) messages.push_back(rng.Below(rsa_key.n));
  std::vector<BigUInt> signatures_a, signatures_b;
  std::thread rsa_tenant([&] {
    signatures_a = crypto::RsaSignBatch(rsa_key, messages, service);
    signatures_b = crypto::RsaSignBatch(rsa_key, messages, service);
  });
  for (std::thread& tenant : tenants) tenant.join();
  rsa_tenant.join();
  service.Wait();

  std::vector<Exponentiator> oracles;
  oracles.reserve(moduli.size());
  for (const BigUInt& n : moduli) oracles.emplace_back(n);
  for (std::size_t t = 0; t < kTenants; ++t) {
    ASSERT_EQ(futures[t].size(), jobs[t].size());
    for (std::size_t j = 0; j < futures[t].size(); ++j) {
      const TenantJob& job = jobs[t][j];
      ASSERT_EQ(futures[t][j].get().value,
                oracles[job.modulus_index].ModExp(job.base, job.exponent))
          << "tenant " << t << " job " << j;
    }
  }
  // Pipelined CRT is bit-identical to the scalar private-key oracle.
  ASSERT_EQ(signatures_a.size(), messages.size());
  for (std::size_t j = 0; j < messages.size(); ++j) {
    EXPECT_EQ(signatures_a[j], crypto::RsaPrivate(rsa_key, messages[j]));
    EXPECT_EQ(signatures_b[j], signatures_a[j]);
  }

  // Counter truthfulness: conservation across issue modes and the hold
  // ledger balancing out once the pool is drained.
  const auto counters = service.Snapshot();
  const std::uint64_t total =
      kTenants * kBursts * kBurstJobs + 2 * 2 * messages.size();
  EXPECT_EQ(counters.jobs_submitted, total);
  EXPECT_EQ(counters.jobs_completed, total);
  EXPECT_EQ(2 * counters.pair_issues + counters.single_issues, total);
  EXPECT_EQ(counters.holds, counters.hold_pairs + counters.unpair_timeouts);
  EXPECT_GT(counters.pair_issues, 0u);
  EXPECT_GT(counters.engine_cache_hits, 0u);
}

// Regression for the shutdown drain: destroying the service with jobs
// still queued — including bonded pairs and callback-posted
// continuations — must resolve every future and run every continuation
// before the destructor returns.  No callback may run after destruction.
TEST(ExpService, ShutdownDrainsInFlightBondedPairsAndContinuations) {
  auto rng = test::TestRng();
  const BigUInt n = rng.OddExactBits(96);
  for (int round = 0; round < 20; ++round) {
    std::vector<std::future<ExpService::Result>> futures;
    std::pair<std::future<ExpService::Result>, std::future<ExpService::Result>>
        bonded;
    auto callbacks = std::make_shared<std::atomic<int>>(0);
    auto continuations = std::make_shared<std::atomic<int>>(0);
    constexpr int kJobs = 12;
    {
      ExpService::Options options;
      options.workers = 2;
      ExpService service(options);
      for (int j = 0; j < kJobs; ++j) {
        futures.push_back(service.Submit(
            n, rng.Below(n), rng.Below(n),
            [&service, callbacks, continuations](const ExpService::Result&) {
              callbacks->fetch_add(1, std::memory_order_relaxed);
              service.Post([continuations] {
                continuations->fetch_add(1, std::memory_order_relaxed);
              });
            }));
      }
      bonded = service.SubmitPair(n, rng.Below(n), rng.Below(n), n,
                                  rng.Below(n), rng.Below(n));
      // Destructor runs here, racing the freshly queued work.
    }
    EXPECT_EQ(callbacks->load(), kJobs) << "round " << round;
    EXPECT_EQ(continuations->load(), kJobs) << "round " << round;
    for (auto& future : futures) {
      ASSERT_EQ(future.wait_for(std::chrono::seconds(0)),
                std::future_status::ready);
      future.get();
    }
    ASSERT_EQ(bonded.first.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    ASSERT_EQ(bonded.second.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    bonded.first.get();
    bonded.second.get();
  }
}

}  // namespace
}  // namespace mont::core
