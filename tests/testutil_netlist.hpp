// testutil_netlist.hpp — gate-level companion to testutil.hpp: bus drive
// helpers plus gtest-flavoured wrappers over the shared MMMC drive
// protocol (src/core/sim_drivers.hpp), replacing the hand-rolled
// set-inputs / pulse-start / tick-until-done loops that used to be copied
// into every gate-level suite.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/netlist_gen.hpp"
#include "core/sim_drivers.hpp"
#include "rtl/batch_sim.hpp"
#include "rtl/simulator.hpp"
#include "testutil.hpp"

namespace mont::test {

/// Drives every bit of an input bus from the matching bits of `value`.
inline void SetBus(rtl::Simulator& sim, const rtl::Bus& bus,
                   std::uint64_t value) {
  for (std::size_t i = 0; i < bus.size(); ++i) {
    sim.SetInput(bus[i], ((value >> i) & 1) != 0);
  }
}

inline void SetBus(rtl::Simulator& sim, const rtl::Bus& bus,
                   const bignum::BigUInt& value) {
  core::DriveBus(sim, bus, value);
}

/// Drives the same value into every lane of a batch simulator's input bus.
inline void SetBusAllLanes(rtl::BatchSimulator& sim, const rtl::Bus& bus,
                           const bignum::BigUInt& value) {
  core::DriveBusAllLanes(sim, bus, value);
}

/// Drives one lane of a batch simulator's input bus.
inline void SetBusLane(rtl::BatchSimulator& sim, const rtl::Bus& bus,
                       std::size_t lane, const bignum::BigUInt& value) {
  core::DriveBusLane(sim, bus, lane, value);
}

/// The stimulus vector that starts one MMMC multiplication: operands,
/// modulus, and the START pulse — for testbench-style drivers that want
/// (net, value) pairs instead of a live simulator.
inline std::vector<std::pair<rtl::NetId, bool>> MmmcStartStimulus(
    const core::MmmcNetlist& gen, const bignum::BigUInt& x,
    const bignum::BigUInt& y, const bignum::BigUInt& n) {
  std::vector<std::pair<rtl::NetId, bool>> stimulus;
  stimulus.emplace_back(gen.start, true);
  for (std::size_t b = 0; b < gen.x_in.size(); ++b) {
    stimulus.emplace_back(gen.x_in[b], x.Bit(b));
    stimulus.emplace_back(gen.y_in[b], y.Bit(b));
  }
  for (std::size_t b = 0; b < gen.n_in.size(); ++b) {
    stimulus.emplace_back(gen.n_in[b], n.Bit(b));
  }
  return stimulus;
}

/// Scalar MMMC driver with a Multiply() that reports a gtest failure (and
/// returns zero) when the FSM hangs.
class MmmcNetlistDriver : public core::MmmcSimDriver {
 public:
  using core::MmmcSimDriver::MmmcSimDriver;

  bignum::BigUInt Multiply(const bignum::BigUInt& x, const bignum::BigUInt& y,
                           std::uint64_t* cycles_taken = nullptr) {
    bignum::BigUInt out;
    if (!TryMultiply(x, y, &out, cycles_taken)) {
      ADD_FAILURE() << "MMMC netlist FSM hung (l = " << gen().l << ")";
    }
    return out;
  }
};

/// 64-lane MMMC driver with the matching failure-reporting Multiply().
class BatchMmmcNetlistDriver : public core::MmmcBatchSimDriver {
 public:
  using core::MmmcBatchSimDriver::MmmcBatchSimDriver;

  std::vector<bignum::BigUInt> Multiply(
      const std::vector<bignum::BigUInt>& xs,
      const std::vector<bignum::BigUInt>& ys,
      std::uint64_t* cycles_taken = nullptr) {
    std::vector<bignum::BigUInt> out;
    if (!TryMultiply(xs, ys, &out, cycles_taken)) {
      ADD_FAILURE() << "batch MMMC netlist FSM hung (l = " << gen().l << ")";
      out.assign(xs.size(), bignum::BigUInt{});
    }
    return out;
  }
};

/// The lane-parallel fault-campaign workload body: multiplies (x, y) on
/// every lane of `sim` (each lane carrying a different injected fault) and
/// returns the lanes whose behaviour diverged from a healthy circuit —
/// wrong result read at that lane's own DONE cycle, DONE at any cycle
/// other than the paper's 3l+4, or no DONE within `max_cycles` (hung
/// FSM).  Mirrors, lane for lane, the detection criteria of the scalar
/// TryMultiply-and-compare workload, which is what makes sequential and
/// batch campaigns comparable fault-for-fault.
inline std::uint64_t DetectMmmcFaultLanes(
    rtl::BatchSimulator& sim, const core::MmmcNetlist& gen,
    const bignum::BigUInt& n, const bignum::BigUInt& x,
    const bignum::BigUInt& y, const bignum::BigUInt& expect,
    std::uint64_t max_cycles = 0) {
  constexpr std::size_t kLanes = rtl::BatchSimulator::kLanes;
  if (max_cycles == 0) max_cycles = 8 * (gen.l + 4);
  core::MmmcBatchSimDriver drv(gen, sim);
  drv.LoadModulus(n);
  const std::vector<bignum::BigUInt> xs(kLanes, x), ys(kLanes, y);
  drv.Start(xs, ys);
  std::uint64_t detected = 0, done_seen = 0;
  for (std::uint64_t cycle = 1; cycle <= max_cycles; ++cycle) {
    const std::uint64_t newly = drv.DoneLanes() & ~done_seen;
    for (std::size_t lane = 0; lane < kLanes; ++lane) {
      if (((newly >> lane) & 1u) != 0 && drv.Result(lane) != expect) {
        detected |= std::uint64_t{1} << lane;  // wrong value
      }
    }
    if (cycle != 3 * gen.l + 4) detected |= newly;  // latency change
    done_seen |= newly;
    if (done_seen == rtl::BatchSimulator::kAllLanes) break;
    drv.Tick();
  }
  return detected | ~done_seen;  // hung lanes
}

}  // namespace mont::test
