// testutil_netlist.hpp — gate-level companion to testutil.hpp: a pin-level
// driver for generated MMMC netlists, replacing the hand-rolled
// set-inputs / pulse-start / tick-until-done loops that used to be copied
// into every gate-level suite.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/netlist_gen.hpp"
#include "rtl/simulator.hpp"
#include "testutil.hpp"

namespace mont::test {

/// Drives every bit of an input bus from the matching bits of `value`.
inline void SetBus(rtl::Simulator& sim, const rtl::Bus& bus,
                   std::uint64_t value) {
  for (std::size_t i = 0; i < bus.size(); ++i) {
    sim.SetInput(bus[i], ((value >> i) & 1) != 0);
  }
}

inline void SetBus(rtl::Simulator& sim, const rtl::Bus& bus,
                   const bignum::BigUInt& value) {
  for (std::size_t i = 0; i < bus.size(); ++i) {
    sim.SetInput(bus[i], value.Bit(i));
  }
}

/// The stimulus vector that starts one MMMC multiplication: operands,
/// modulus, and the START pulse — for testbench-style drivers that want
/// (net, value) pairs instead of a live simulator.
inline std::vector<std::pair<rtl::NetId, bool>> MmmcStartStimulus(
    const core::MmmcNetlist& gen, const bignum::BigUInt& x,
    const bignum::BigUInt& y, const bignum::BigUInt& n) {
  std::vector<std::pair<rtl::NetId, bool>> stimulus;
  stimulus.emplace_back(gen.start, true);
  for (std::size_t b = 0; b < gen.x_in.size(); ++b) {
    stimulus.emplace_back(gen.x_in[b], x.Bit(b));
    stimulus.emplace_back(gen.y_in[b], y.Bit(b));
  }
  for (std::size_t b = 0; b < gen.n_in.size(); ++b) {
    stimulus.emplace_back(gen.n_in[b], n.Bit(b));
  }
  return stimulus;
}

/// Drives a generated MMMC netlist the way the paper's environment drives
/// the chip: load the modulus once, then each Multiply() presents the
/// operands, pulses START for one clock edge, and runs to DONE.
class MmmcNetlistDriver {
 public:
  /// Owns a fresh simulator over the generated netlist.
  explicit MmmcNetlistDriver(const core::MmmcNetlist& gen)
      : gen_(gen),
        owned_(std::make_unique<rtl::Simulator>(*gen.netlist)),
        sim_(*owned_) {}

  /// Borrows an existing simulator (fault campaigns construct their own).
  MmmcNetlistDriver(const core::MmmcNetlist& gen, rtl::Simulator& sim)
      : gen_(gen), sim_(sim) {}

  rtl::Simulator& sim() { return sim_; }

  void LoadModulus(const bignum::BigUInt& n) { SetBus(sim_, gen_.n_in, n); }

  /// Dual-field builds only: true selects GF(p), false selects GF(2^m).
  void SelectField(bool gfp) { sim_.SetInput(gen_.fsel, gfp); }

  /// Presents x, y and pulses START for exactly one clock edge.
  void Start(const bignum::BigUInt& x, const bignum::BigUInt& y) {
    SetBus(sim_, gen_.x_in, x);
    SetBus(sim_, gen_.y_in, y);
    sim_.SetInput(gen_.start, true);
    sim_.Tick();
    sim_.SetInput(gen_.start, false);
  }

  void Tick() { sim_.Tick(); }
  bool Done() const { return sim_.Peek(gen_.done); }

  bignum::BigUInt Result() const {
    bignum::BigUInt out;
    for (std::size_t b = 0; b < gen_.result.size(); ++b) {
      if (sim_.Peek(gen_.result[b])) out.SetBit(b, true);
    }
    return out;
  }

  /// One full multiplication.  Returns false if DONE does not arrive within
  /// `max_cycles` edges (a hung FSM — fault campaigns count that as a
  /// detection).  On success the OUT state is drained so the next Start()
  /// begins from IDLE, and `cycles_taken` receives the START-to-DONE edge
  /// count (always 3l+4 on a healthy circuit).
  bool TryMultiply(const bignum::BigUInt& x, const bignum::BigUInt& y,
                   bignum::BigUInt* out,
                   std::uint64_t* cycles_taken = nullptr,
                   std::uint64_t max_cycles = 0) {
    if (max_cycles == 0) max_cycles = 8 * (gen_.l + 4);
    Start(x, y);
    std::uint64_t cycles = 1;
    while (!Done()) {
      if (cycles >= max_cycles) return false;
      sim_.Tick();
      ++cycles;
    }
    if (out != nullptr) *out = Result();
    if (cycles_taken != nullptr) *cycles_taken = cycles;
    sim_.Tick();  // drain OUT -> IDLE
    return true;
  }

  /// Multiply that reports a test failure (and returns zero) on a hang.
  bignum::BigUInt Multiply(const bignum::BigUInt& x, const bignum::BigUInt& y,
                           std::uint64_t* cycles_taken = nullptr) {
    bignum::BigUInt out;
    if (!TryMultiply(x, y, &out, cycles_taken)) {
      ADD_FAILURE() << "MMMC netlist FSM hung (l = " << gen_.l << ")";
    }
    return out;
  }

 private:
  const core::MmmcNetlist& gen_;
  std::unique_ptr<rtl::Simulator> owned_;
  rtl::Simulator& sim_;
};

}  // namespace mont::test
