// The side-channel lab end to end: gate-level batched trace capture
// (TraceSet / GateLevelCapture), the CPA/DPA attack engine recovering
// secret exponent bits from unprotected executions, and countermeasure
// closure — the same attack collapsing to chance on blinded executions.
//
// Everything is deterministic (per-test seeded RNG, exact switching
// counts from the compiled simulator, seeded Gaussian noise), so the
// recovery-rate assertions are reproducible, not statistical gambles.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "bignum/random.hpp"
#include "crypto/rsa.hpp"
#include "sca/analysis.hpp"
#include "sca/attack.hpp"
#include "sca/trace.hpp"
#include "testutil.hpp"

namespace mont::sca {
namespace {

using bignum::BigUInt;

// The lab's documented trace budget: one batch pass of the 64-lane
// simulator.  The acceptance tests below hold at this budget.
constexpr std::size_t kTraceBudget = 64;

std::vector<BigUInt> RandomBases(bignum::RandomBigUInt& rng, const BigUInt& n,
                                 std::size_t count) {
  std::vector<BigUInt> bases;
  bases.reserve(count);
  for (std::size_t i = 0; i < count; ++i) bases.push_back(rng.Below(n));
  return bases;
}

// ---------------------------------------------------------------------------
// TraceSet utilities
// ---------------------------------------------------------------------------

TEST(TraceSet, AppendColumnHeadAndEnergy) {
  TraceSet set;
  set.Append(std::vector<double>{1, 2, 3});
  set.Append(std::vector<double>{4, 5, 6});
  EXPECT_EQ(set.Count(), 2u);
  EXPECT_EQ(set.Samples(), 3u);
  std::vector<double> column;
  set.Column(1, column);
  EXPECT_EQ(column, (std::vector<double>{2, 5}));
  EXPECT_DOUBLE_EQ(set.TraceEnergy(1), 15.0);
  const TraceSet head = set.Head(1);
  EXPECT_EQ(head.Count(), 1u);
  EXPECT_DOUBLE_EQ(head.At(0, 2), 3.0);
  EXPECT_THROW(set.Append(std::vector<double>{1}), std::invalid_argument);
  const auto mean = set.MeanTrace();
  EXPECT_DOUBLE_EQ(mean[0], 2.5);
}

TEST(TraceSet, CompressSumsWindows) {
  TraceSet set;
  set.Append(std::vector<double>{1, 2, 3, 4, 5});
  const TraceSet compressed = set.Compress(2);
  EXPECT_EQ(compressed.Samples(), 3u);
  EXPECT_DOUBLE_EQ(compressed.At(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(compressed.At(0, 1), 7.0);
  EXPECT_DOUBLE_EQ(compressed.At(0, 2), 5.0);  // trailing partial window
}

TEST(TraceSet, GaussianNoiseIsSeededAndZeroMeanish) {
  TraceSet a, b;
  const std::vector<double> flat(512, 10.0);
  a.Append(flat);
  b.Append(flat);
  a.AddGaussianNoise(2.0, 42);
  b.AddGaussianNoise(2.0, 42);
  double sum = 0;
  bool any_moved = false;
  for (std::size_t s = 0; s < a.Samples(); ++s) {
    EXPECT_DOUBLE_EQ(a.At(0, s), b.At(0, s)) << "same seed, same noise";
    any_moved |= a.At(0, s) != 10.0;
    sum += a.At(0, s) - 10.0;
  }
  EXPECT_TRUE(any_moved);
  EXPECT_LT(std::abs(sum / 512.0), 0.5) << "zero-mean-ish at sigma 2";
  TraceSet c;
  c.Append(flat);
  c.AddGaussianNoise(2.0, 43);
  bool differs = false;
  for (std::size_t s = 0; s < c.Samples(); ++s) {
    differs |= c.At(0, s) != a.At(0, s);
  }
  EXPECT_TRUE(differs) << "different seed, different noise";
}

TEST(TraceSet, AlignRecoversInjectedShift) {
  // A distinctive reference with one clear peak; shifted copies align
  // back to it.
  std::vector<double> reference(64, 1.0);
  for (int i = 28; i < 36; ++i) reference[i] = 10.0 + (i % 3);
  TraceSet shifted;
  for (const int shift : {-3, 0, 2}) {
    std::vector<double> trace(64, 1.0);
    for (int i = 0; i < 64; ++i) {
      const int src = i + shift;
      if (src >= 0 && src < 64) trace[i] = reference[src];
    }
    shifted.Append(trace);
  }
  const TraceSet aligned = shifted.AlignTo(reference, 4);
  for (std::size_t t = 0; t < aligned.Count(); ++t) {
    for (int i = 20; i < 44; ++i) {  // compare away from the padded edges
      EXPECT_DOUBLE_EQ(aligned.At(t, i), reference[i])
          << "trace " << t << " sample " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Gate-level capture
// ---------------------------------------------------------------------------

TEST(GateLevelCapture, TraceShapeAndDeterminism) {
  auto rng = test::TestRng();
  const BigUInt n = rng.OddExactBits(16);
  GateLevelCapture capture(n);
  const auto xs = RandomBases(rng, n << 1, 5);
  const auto ys = RandomBases(rng, n << 1, 5);
  const TraceSet a = capture.CaptureMultiplications(xs, ys);
  EXPECT_EQ(a.Count(), 5u);
  EXPECT_EQ(a.Samples(), capture.SamplesPerMultiplication());
  EXPECT_EQ(a.Samples(), 3 * capture.l() + 4);
  // Same stimuli on a fresh capture: identical traces (and the gate-level
  // samples are real activity — nonzero for nonzero operands).
  GateLevelCapture capture2(n);
  const TraceSet b = capture2.CaptureMultiplications(xs, ys);
  for (std::size_t t = 0; t < a.Count(); ++t) {
    for (std::size_t s = 0; s < a.Samples(); ++s) {
      ASSERT_DOUBLE_EQ(a.At(t, s), b.At(t, s));
    }
  }
  EXPECT_GT(a.TraceEnergy(0), 0.0);
}

TEST(GateLevelCapture, RejectsBadOperands) {
  auto rng = test::TestRng();
  const BigUInt n = rng.OddExactBits(12);
  GateLevelCapture capture(n);
  const std::vector<BigUInt> ok{BigUInt{1}};
  const std::vector<BigUInt> big{n << 1};
  EXPECT_THROW(capture.CaptureMultiplications(ok, big),
               std::invalid_argument);
  const std::vector<BigUInt> base_big{n};
  EXPECT_THROW(capture.CaptureModExps(base_big, BigUInt{3}),
               std::invalid_argument);
  EXPECT_THROW(capture.CaptureModExps(ok, BigUInt{0}),
               std::invalid_argument);
}

// Satellite acceptance: lane k of one 64-lane batched capture equals the
// capture of stimulus k alone — per-lane toggle accounting is exact, not
// an aggregate.
TEST(GateLevelCapture, BatchedLanesMatchScalarCapture) {
  auto rng = test::TestRng();
  const BigUInt n = rng.OddExactBits(14);
  const BigUInt two_n = n << 1;
  const std::size_t count = 64;
  const auto xs = RandomBases(rng, two_n, count);
  const auto ys = RandomBases(rng, two_n, count);
  GateLevelCapture batched(n);
  const TraceSet batch = batched.CaptureMultiplications(xs, ys);
  ASSERT_EQ(batch.Count(), count);
  for (const std::size_t lane : {std::size_t{0}, std::size_t{1},
                                 std::size_t{17}, std::size_t{63}}) {
    GateLevelCapture scalar(n);
    const std::vector<BigUInt> x1{xs[lane]}, y1{ys[lane]};
    const TraceSet solo = scalar.CaptureMultiplications(x1, y1);
    for (std::size_t s = 0; s < batch.Samples(); ++s) {
      ASSERT_DOUBLE_EQ(batch.At(lane, s), solo.At(0, s))
          << "lane " << lane << " sample " << s;
    }
  }
}

TEST(GateLevelCapture, BatchedModExpLanesMatchScalarCapture) {
  auto rng = test::TestRng();
  const BigUInt n = rng.OddExactBits(12);
  const BigUInt d = rng.ExactBits(8);
  const auto bases = RandomBases(rng, n, 6);
  GateLevelCapture batched(n);
  const TraceSet batch = batched.CaptureModExps(bases, d);
  for (const std::size_t lane : {std::size_t{0}, std::size_t{5}}) {
    GateLevelCapture scalar(n);
    const std::vector<BigUInt> one_base{bases[lane]};
    const TraceSet solo = scalar.CaptureModExps(one_base, d);
    ASSERT_EQ(solo.Samples(), batch.Samples());
    for (std::size_t s = 0; s < batch.Samples(); ++s) {
      ASSERT_DOUBLE_EQ(batch.At(lane, s), solo.At(0, s));
    }
  }
}

// ---------------------------------------------------------------------------
// CPA/DPA recovery on unprotected executions
// ---------------------------------------------------------------------------

TEST(CpaAttack, RecoversExponentFromUnprotectedTraces) {
  auto rng = test::TestRng();
  const BigUInt n = rng.OddExactBits(16);
  const BigUInt d = rng.ExactBits(16);
  const auto bases = RandomBases(rng, n, kTraceBudget);
  GateLevelCapture capture(n);
  const TraceSet traces = capture.CaptureModExps(bases, d);
  CpaAttack attack(n);
  const AttackResult result = attack.Recover(traces, bases, d.BitLength());
  EXPECT_EQ(result.bits.size(), d.BitLength() - 1);
  // The acceptance bar is >= 90% of the targeted bits at the documented
  // 64-trace budget; the noise-free capture in fact recovers all of them.
  EXPECT_GE(result.RecoveredFraction(d), 0.9);
  EXPECT_EQ(result.recovered, d) << "noise-free traces: exact recovery";
  for (const BitResult& bit : result.bits) {
    EXPECT_GT(bit.confidence, 0.5) << "bit " << bit.bit_index;
  }
}

TEST(CpaAttack, DifferenceOfMeansDistinguisherAlsoRecovers) {
  auto rng = test::TestRng();
  const BigUInt n = rng.OddExactBits(16);
  const BigUInt d = rng.ExactBits(14);
  const auto bases = RandomBases(rng, n, kTraceBudget);
  GateLevelCapture capture(n);
  const TraceSet traces = capture.CaptureModExps(bases, d);
  AttackOptions options;
  options.distinguisher = Distinguisher::kDifferenceOfMeans;
  CpaAttack attack(n, options);
  const AttackResult result = attack.Recover(traces, bases, d.BitLength());
  EXPECT_GE(result.RecoveredFraction(d), 0.9);
}

TEST(CpaAttack, HammingWeightModelRecoversAtLargerBudget) {
  auto rng = test::TestRng();
  const BigUInt n = rng.OddExactBits(16);
  const BigUInt d = rng.ExactBits(12);
  const auto bases = RandomBases(rng, n, 128);
  GateLevelCapture capture(n);
  const TraceSet traces = capture.CaptureModExps(bases, d);
  AttackOptions options;
  options.leakage = Leakage::kHammingWeightOutput;
  CpaAttack attack(n, options);
  const AttackResult result = attack.Recover(traces, bases, d.BitLength());
  EXPECT_GE(result.RecoveredFraction(d), 0.9)
      << "the classic single-point CPA needs more traces than the "
         "template-strength state model, but converges";
}

// Rank convergence under noise: a budget too small to disclose, a larger
// one that does — MeasurementsToDisclosure finds the boundary.
TEST(CpaAttack, RankConvergesWithTraceCountUnderNoise) {
  auto rng = test::TestRng();
  const BigUInt n = rng.OddExactBits(16);
  const BigUInt d = rng.ExactBits(16);
  const auto bases = RandomBases(rng, n, kTraceBudget);
  CaptureOptions capture_options;
  capture_options.noise_sigma = 12.0;  // swamps the ~1-sigma signal at n=2
  GateLevelCapture capture(n, capture_options);
  const TraceSet traces = capture.CaptureModExps(bases, d);
  CpaAttack attack(n);
  const double at_4 =
      attack.Recover(traces.Head(4), {bases.data(), 4}, d.BitLength())
          .RecoveredFraction(d);
  const double at_64 =
      attack.Recover(traces, bases, d.BitLength()).RecoveredFraction(d);
  EXPECT_LT(at_4, 0.9) << "4 noisy traces must not disclose";
  EXPECT_GE(at_64, 0.9) << "the full budget averages the noise away";
  EXPECT_GE(at_64, at_4);
  const std::size_t mtd =
      attack.MeasurementsToDisclosure(traces, bases, d, 0.9, 8);
  EXPECT_GT(mtd, 4u);
  EXPECT_LE(mtd, kTraceBudget);
}

// ---------------------------------------------------------------------------
// Countermeasure closure: blinding defeats the same attack
// ---------------------------------------------------------------------------

// RSA-style base blinding: the device exponentiates c * r^e mod n for a
// fresh r per execution while the attacker still predicts from c.  At
// the very budget that discloses the unprotected key, recovery collapses
// to coin-flipping.
TEST(CpaAttack, BaseBlindingDegradesRecoveryToChance) {
  auto rng = test::TestRng();
  const BigUInt n = rng.OddExactBits(16);
  const BigUInt d = rng.ExactBits(16);
  const BigUInt e{65537};
  const auto known = RandomBases(rng, n, kTraceBudget);
  std::vector<BigUInt> executed;  // what the blinded device actually runs
  for (const BigUInt& c : known) {
    executed.push_back(crypto::BlindRsaBase(c, e, n, rng));
  }
  GateLevelCapture capture(n);
  const TraceSet unprotected = capture.CaptureModExps(known, d);
  const TraceSet blinded = capture.CaptureModExps(executed, d);
  CpaAttack attack(n);
  const double open_rate =
      attack.Recover(unprotected, known, d.BitLength()).RecoveredFraction(d);
  const double blinded_rate =
      attack.Recover(blinded, known, d.BitLength()).RecoveredFraction(d);
  EXPECT_GE(open_rate, 0.9) << "same budget discloses the unprotected key";
  EXPECT_LE(blinded_rate, 0.6) << "blinding: chance-level recovery";
  EXPECT_EQ(attack.MeasurementsToDisclosure(blinded, known, d, 0.9, 8), 0u)
      << "no prefix of the blinded budget discloses";
}

// ---------------------------------------------------------------------------
// TVLA fixed-vs-random on RSA: unblinded leaks, blinded does not
// ---------------------------------------------------------------------------

TEST(Tvla, FixedVsRandomRsaUnblindedLeaksBlindedCloses) {
  auto rng = test::TestRng();
  const crypto::RsaKeyPair key = crypto::GenerateRsaKey(32, rng);
  const std::size_t per_class = 24;
  const BigUInt fixed = rng.Below(key.n);
  std::vector<BigUInt> fixed_class(per_class, fixed);
  const auto random_class = RandomBases(rng, key.n, per_class);

  GateLevelCapture capture(key.n);
  // Unblinded: the device exponentiates the inputs as-is — the fixed
  // class is one repeated trace, and the per-sample t-statistic explodes.
  const TraceSet fixed_traces = capture.CaptureModExps(fixed_class, key.d);
  const TraceSet random_traces = capture.CaptureModExps(random_class, key.d);
  const double unblinded_peak = WelchTPeak(fixed_traces, random_traces);
  EXPECT_GT(unblinded_peak, 4.5)
      << "unblinded fixed-vs-random must trip the TVLA threshold";

  // Blinded: each execution runs on c * r^e mod n (fresh r), so even the
  // fixed class sees fresh operands per trace.
  const auto blind = [&](const BigUInt& c) {
    return crypto::BlindRsaBase(c, key.e, key.n, rng);
  };
  std::vector<BigUInt> fixed_blinded, random_blinded;
  for (std::size_t i = 0; i < per_class; ++i) {
    fixed_blinded.push_back(blind(fixed));
    random_blinded.push_back(blind(random_class[i]));
  }
  const double blinded_peak =
      WelchTPeak(capture.CaptureModExps(fixed_blinded, key.d),
                 capture.CaptureModExps(random_blinded, key.d));
  // Peak-over-thousands-of-samples inflates the null statistic (the
  // standard TVLA multiple-comparison caveat), so the closure assertion
  // is a margin: the blinded peak must lose an order of magnitude, and
  // the unblinded peak must dwarf the threshold.
  EXPECT_GT(unblinded_peak, 10.0 * blinded_peak)
      << "blinding must collapse the fixed-vs-random separation";
  EXPECT_LT(blinded_peak, 6.0)
      << "blinded peak must sit near the null band";
}

// The legacy proxy still holds at gate level: Algorithm 2's *timing* is
// input-independent while its power is not (now measured on every net of
// the real netlist, not the 3-register software model).
TEST(Tvla, GateLevelPowerVariesWhileTimingDoesNot) {
  auto rng = test::TestRng();
  const BigUInt n = rng.OddExactBits(20);
  const BigUInt two_n = n << 1;
  GateLevelCapture capture(n);
  const auto xs = RandomBases(rng, two_n, 16);
  const auto ys = RandomBases(rng, two_n, 16);
  const TraceSet traces = capture.CaptureMultiplications(xs, ys);
  // Timing: every trace has exactly 3l+4 samples by construction — the
  // capture would throw if DONE drifted.  Power: energies differ.
  double min_energy = traces.TraceEnergy(0), max_energy = min_energy;
  for (std::size_t t = 1; t < traces.Count(); ++t) {
    min_energy = std::min(min_energy, traces.TraceEnergy(t));
    max_energy = std::max(max_energy, traces.TraceEnergy(t));
  }
  EXPECT_GT(max_energy, min_energy);
}

}  // namespace
}  // namespace mont::sca
