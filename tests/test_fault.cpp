// Tests for fault injection: fault semantics, propagation through logic
// and state, and a fault campaign on the generated MMMC showing that the
// multiply-against-reference check detects the overwhelming majority of
// single stuck-at faults (i.e. the verification flow has teeth).
#include <gtest/gtest.h>

#include "bignum/montgomery.hpp"
#include "bignum/random.hpp"
#include "core/netlist_gen.hpp"
#include "rtl/components.hpp"
#include "rtl/fault.hpp"
#include "rtl/simulator.hpp"
#include "testutil.hpp"
#include "testutil_netlist.hpp"

namespace mont::rtl {
namespace {

TEST(Fault, StuckAtOverridesGateOutput) {
  Netlist nl;
  const NetId a = nl.AddInput("a");
  const NetId b = nl.AddInput("b");
  const NetId g = nl.And(a, b);
  Simulator sim(nl);
  sim.SetInput(a, true);
  sim.SetInput(b, true);
  sim.Settle();
  EXPECT_TRUE(sim.Peek(g));
  sim.InjectFault(g, FaultType::kStuckAt0);
  EXPECT_FALSE(sim.Peek(g));
  sim.ClearFaults();
  sim.Settle();
  EXPECT_TRUE(sim.Peek(g));
}

TEST(Fault, PropagatesDownstream) {
  Netlist nl;
  const NetId a = nl.AddInput("a");
  const NetId inv = nl.Not(a);
  const NetId out = nl.Or(inv, nl.Const0());
  Simulator sim(nl);
  sim.SetInput(a, true);
  sim.Settle();
  EXPECT_FALSE(sim.Peek(out));
  sim.InjectFault(inv, FaultType::kStuckAt1);
  EXPECT_TRUE(sim.Peek(out)) << "fault must flow through downstream gates";
}

TEST(Fault, InvertFaultOnInput) {
  Netlist nl;
  const NetId a = nl.AddInput("a");
  const NetId buf = nl.Buf(a);
  Simulator sim(nl);
  sim.InjectFault(a, FaultType::kInvert);
  sim.SetInput(a, false);
  sim.Settle();
  EXPECT_TRUE(sim.Peek(buf));
  sim.SetInput(a, true);
  sim.Settle();
  EXPECT_FALSE(sim.Peek(buf));
}

TEST(Fault, CorruptsSequentialState) {
  // A faulted DFF poisons everything it feeds on later cycles.
  Netlist nl;
  const NetId q = nl.Dff(nl.Const1());
  const NetId out = nl.Buf(q);
  Simulator sim(nl);
  sim.Run(2);
  EXPECT_TRUE(sim.Peek(out));
  sim.InjectFault(q, FaultType::kStuckAt0);
  sim.Run(1);
  EXPECT_FALSE(sim.Peek(out));
}

TEST(Fault, RejectsUnknownNet) {
  Netlist nl;
  Simulator sim(nl);
  EXPECT_THROW(sim.InjectFault(12345, FaultType::kStuckAt0),
               std::out_of_range);
}

TEST(Fault, CampaignCountsDetections) {
  // A 4-bit adder with an exhaustive-check workload: every stuck-at fault
  // on the sum outputs must be detected.
  Netlist nl;
  const Bus a = InputBus(nl, "a", 4);
  const Bus b = InputBus(nl, "b", 4);
  const Bus sum = RippleCarryAdder(nl, a, b);
  std::vector<NetId> targets(sum.begin(), sum.end());
  const auto workload = [&](Simulator& sim) {
    for (std::uint64_t va = 0; va < 16; ++va) {
      for (std::uint64_t vb = 0; vb < 16; ++vb) {
        test::SetBus(sim, a, va);
        test::SetBus(sim, b, vb);
        sim.Settle();
        if (sim.PeekBus(sum) != va + vb) return true;  // detected
      }
    }
    return false;
  };
  const FaultCoverage coverage = RunFaultCampaign(
      nl, targets, {FaultType::kStuckAt0, FaultType::kStuckAt1}, workload);
  EXPECT_EQ(coverage.injected, 10u);
  EXPECT_EQ(coverage.detected, 10u) << "exhaustive workload catches all";
  EXPECT_DOUBLE_EQ(coverage.Rate(), 1.0);
}

// The flagship check: single stuck-at faults across the MMMC datapath are
// overwhelmingly caught by comparing one multiplication against the
// software reference.  (Faults on e.g. unused high counter bits can be
// silent — that is expected and quantified.)  Runs on the lane-parallel
// campaign engine — 64 faulted circuit copies per simulation pass — which
// makes an every-other-net population affordable where the sequential
// engine could only sample every 8th net.
TEST(Fault, MmmcCampaignDetectsDatapathFaults) {
  using bignum::BigUInt;
  const std::size_t l = 8;
  auto rng = test::TestRng();
  const BigUInt n = rng.OddExactBits(l);
  const bignum::BitSerialMontgomery reference(n);
  const auto gen = core::BuildMmmcNetlist(l);
  const BigUInt two_n = n << 1;
  const BigUInt x = rng.Below(two_n), y = rng.Below(two_n);
  const BigUInt expect = reference.MultiplyAlg2(x, y);

  const auto workload = [&](BatchSimulator& sim) {
    return test::DetectMmmcFaultLanes(sim, gen, n, x, y, expect);
  };

  // Every other node as the target population (deterministic sample).
  std::vector<NetId> targets;
  for (NetId id = 2; id < gen.netlist->NodeCount(); id += 2) {
    targets.push_back(id);
  }
  const FaultCoverage coverage = RunFaultCampaignBatch(
      *gen.netlist, targets, {FaultType::kStuckAt0, FaultType::kStuckAt1},
      workload);
  EXPECT_GT(coverage.injected, 200u);
  EXPECT_GT(coverage.Rate(), 0.55)
      << "single multiply must flag a majority of stuck-at faults";
}

}  // namespace
}  // namespace mont::rtl
