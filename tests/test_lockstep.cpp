// test_lockstep.cpp — deterministic property test tying the two hardware
// fidelity levels together register-for-register: for a sweep of bit
// lengths, the behavioural Mmmc and the generated gate-level netlist must
// agree on every architected register (the Eq. 4–9 cell recurrences held
// in t/c0/c1, the ASM state, the comparator) after every clock edge, and
// both must finish in exactly the paper's 3l+4 cycles.
#include <gtest/gtest.h>

#include <cstdint>

#include "bignum/biguint.hpp"
#include "core/mmmc.hpp"
#include "core/netlist_gen.hpp"
#include "core/schedule.hpp"
#include "rtl/simulator.hpp"
#include "testutil.hpp"
#include "testutil_netlist.hpp"

namespace mont::core {
namespace {

using bignum::BigUInt;
using test::MmmcNetlistDriver;

// Netlist controller encoding (Fig. 4): IDLE=00, MUL1=01, MUL2=10, OUT=11.
int EncodeState(MmmcState state) {
  switch (state) {
    case MmmcState::kIdle: return 0;
    case MmmcState::kMul1: return 1;
    case MmmcState::kMul2: return 2;
    case MmmcState::kOut: return 3;
  }
  return -1;
}

class Lockstep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Lockstep, CellRecurrencesAndCycleCountMatchEveryEdge) {
  const std::size_t l = GetParam();
  auto rng = test::TestRng();
  const BigUInt n = rng.OddExactBits(l);
  const BigUInt two_n = n << 1;

  const MmmcNetlist gen = BuildMmmcNetlist(l);
  ASSERT_EQ(gen.t_probe.size(), l + 2);
  ASSERT_EQ(gen.c0_probe.size(), l);
  ASSERT_EQ(gen.c1_probe.size(), l - 1);
  MmmcNetlistDriver drv(gen);
  Mmmc model(n);
  drv.LoadModulus(n);

  for (int trial = 0; trial < 3; ++trial) {
    const BigUInt x = rng.Below(two_n);
    const BigUInt y = rng.Below(two_n);
    SCOPED_TRACE("l=" + std::to_string(l) + " x=0x" + x.ToHex() + " y=0x" +
                 y.ToHex() + " n=0x" + n.ToHex());

    model.ApplyInputs(x, y);
    drv.Start(x, y);  // one clock edge in the netlist...
    model.Tick();     // ...and the matching edge in the model
    std::uint64_t cycles = 1;

    while (true) {
      // ASM state and comparator.
      const int gate_state = (drv.sim().Peek(gen.state_s1) ? 2 : 0) |
                             (drv.sim().Peek(gen.state_s0) ? 1 : 0);
      ASSERT_EQ(gate_state, EncodeState(model.State())) << "cycle " << cycles;
      ASSERT_EQ(drv.sim().Peek(gen.count_end), model.CountEnd())
          << "cycle " << cycles;

      // Cell registers: t[j] (j = 1..l+2), c0[j] (j = 0..l-1), c1[j]
      // (j = 1..l-1) — the registered values of Eq. 4–9.
      const auto& t = model.TBits();
      for (std::size_t j = 1; j <= l + 2; ++j) {
        ASSERT_EQ(drv.sim().Peek(gen.t_probe[j - 1]), t[j] != 0)
            << "t[" << j << "] diverged at cycle " << cycles;
      }
      const auto& c0 = model.C0Bits();
      for (std::size_t j = 0; j < l; ++j) {
        ASSERT_EQ(drv.sim().Peek(gen.c0_probe[j]), c0[j] != 0)
            << "c0[" << j << "] diverged at cycle " << cycles;
      }
      const auto& c1 = model.C1Bits();
      for (std::size_t j = 1; j < l; ++j) {
        ASSERT_EQ(drv.sim().Peek(gen.c1_probe[j - 1]), c1[j] != 0)
            << "c1[" << j << "] diverged at cycle " << cycles;
      }

      ASSERT_EQ(drv.Done(), model.Done()) << "cycle " << cycles;
      if (model.Done()) break;
      ASSERT_LE(cycles, 3 * l + 10) << "neither side reached DONE";
      model.Tick();
      drv.Tick();
      ++cycles;
    }

    // The paper's headline count, measured identically on both sides.
    EXPECT_EQ(cycles, MultiplyCycles(l));
    EXPECT_EQ(cycles, 3 * l + 4);
    EXPECT_EQ(drv.Result(), model.Result());

    // Drain OUT -> IDLE on both sides before the next trial.
    model.Tick();
    drv.Tick();
  }
}

INSTANTIATE_TEST_SUITE_P(BitLengths, Lockstep,
                         ::testing::ValuesIn(test::kGateLevelBitLengths));

// The 64-lane engine ties the same knot at batch scale: 64 independent
// operand pairs per netlist simulation, every lane's result and latency
// checked against the behavioural model stepped with that lane's operands.
class BatchLockstep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BatchLockstep, SixtyFourOperandPairsPerSimulation) {
  const std::size_t l = GetParam();
  auto rng = test::TestRng();
  const BigUInt n = rng.OddExactBits(l);
  const BigUInt two_n = n << 1;

  const MmmcNetlist gen = BuildMmmcNetlist(l);
  test::BatchMmmcNetlistDriver drv(gen);
  drv.LoadModulus(n);

  std::vector<BigUInt> xs, ys;
  for (std::size_t lane = 0; lane < rtl::BatchSimulator::kLanes; ++lane) {
    xs.push_back(rng.Below(two_n));
    ys.push_back(rng.Below(two_n));
  }
  std::uint64_t cycles = 0;
  const std::vector<BigUInt> results = drv.Multiply(xs, ys, &cycles);
  EXPECT_EQ(cycles, 3 * l + 4);

  Mmmc model(n);
  for (std::size_t lane = 0; lane < results.size(); ++lane) {
    SCOPED_TRACE("lane " + std::to_string(lane) + " x=0x" + xs[lane].ToHex() +
                 " y=0x" + ys[lane].ToHex() + " n=0x" + n.ToHex());
    EXPECT_EQ(results[lane], model.Multiply(xs[lane], ys[lane]));
  }
}

INSTANTIATE_TEST_SUITE_P(BitLengths, BatchLockstep,
                         ::testing::Values<std::size_t>(4, 8, 16, 32));

}  // namespace
}  // namespace mont::core
