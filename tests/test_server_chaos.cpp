// Chaos/fault-injection suite for the signing service: every knob of
// server/chaos.hpp turned on against a live service, asserting the
// robustness invariants the front-end exists for —
//
//   * no hangs and no lost responses: every request gets exactly one
//     typed response, Wait()/the destructor always return;
//   * zero bad signatures: an injected CRT fault is caught by the
//     Bellcore check on every attempt, the service retries internally,
//     and anything released verifies against the public key;
//   * isolation: one stalled worker plus one flooding tenant do not stop
//     a healthy high-priority tenant from being served;
//   * typed shedding: overload and backpressure produce their exact
//     status codes, never silent drops.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "bignum/biguint.hpp"
#include "bignum/random.hpp"
#include "crypto/pkcs1.hpp"
#include "crypto/rsa.hpp"
#include "server/chaos.hpp"
#include "server/client.hpp"
#include "server/keystore.hpp"
#include "server/signing_service.hpp"
#include "server/transport.hpp"
#include "server/wire.hpp"
#include "testutil.hpp"

namespace mont::server {
namespace {

using bignum::BigUInt;

const crypto::RsaKeyPair& TestKey() {
  static const crypto::RsaKeyPair key = [] {
    bignum::RandomBigUInt rng(0x5e21e57a11u);  // same key as test_server
    return crypto::GenerateRsaKey(512, rng);
  }();
  return key;
}

std::vector<std::uint8_t> Bytes(const std::string& s) {
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

SignRequest MakeRequest(std::uint32_t tenant_id, const std::string& message,
                        std::uint64_t deadline_ticks = 0) {
  SignRequest request;
  request.request_id = 1;
  request.tenant_id = tenant_id;
  request.key_id = 1;
  request.deadline_ticks = deadline_ticks;
  request.message = Bytes(message);
  return request;
}

bool Verifies(const std::vector<std::uint8_t>& message,
              const std::vector<std::uint8_t>& signature) {
  return crypto::RsaVerifyPkcs1V15(TestKey(), message,
                                   BigUInt::FromBytesBE(signature));
}

// ---------------------------------------------------------------------------
// CRT fault injection vs the Bellcore gate
// ---------------------------------------------------------------------------

TEST(ChaosSuite, InjectedCrtFaultIsCaughtRetriedAndNeverReleased) {
  ChaosOptions chaos_options;
  chaos_options.seed = 0xfa0175;
  // Corrupt roughly a third of recombinations: most requests see a clean
  // retry, some see several faults in a row.
  chaos_options.corrupt_crt_rate = 0.35;
  ChaosLayer chaos(chaos_options);

  Keystore keystore;
  keystore.AddTenant(1, {});
  keystore.AddKey(1, 1, TestKey());
  SigningService::Options options;
  options.chaos = &chaos;
  options.max_internal_retries = 4;
  SigningService service(std::move(keystore), options);

  int ok = 0;
  int exhausted = 0;
  for (int i = 0; i < 24; ++i) {
    const auto message = Bytes("fault round " + std::to_string(i));
    auto request = MakeRequest(1, "");
    request.message = message;
    const auto response =
        service.HandleRequestSync(EncodeSignRequest(request));
    if (response.status == StatusCode::kOk) {
      ++ok;
      // THE invariant: anything released verifies.
      EXPECT_TRUE(Verifies(message, response.payload));
    } else {
      // The only other legal outcome is typed retry exhaustion.
      EXPECT_EQ(response.status, StatusCode::kInternalRetrying);
      ++exhausted;
    }
  }
  const auto counters = service.Snapshot();
  EXPECT_EQ(counters.bad_signatures_released, 0u);
  // The injection actually fired, the gate actually caught.
  EXPECT_GT(counters.faults_caught, 0u);
  EXPECT_EQ(counters.faults_caught, chaos.Snapshot().crt_corruptions);
  EXPECT_GT(counters.internal_retries, 0u);
  EXPECT_EQ(counters.ok, static_cast<std::uint64_t>(ok));
  EXPECT_EQ(counters.retry_exhausted, static_cast<std::uint64_t>(exhausted));
  // With rate 0.35 and 4 retries, most requests must still succeed.
  EXPECT_GT(ok, exhausted);
}

TEST(ChaosSuite, CertainFaultExhaustsRetriesWithTypedErrorOnly) {
  ChaosOptions chaos_options;
  chaos_options.corrupt_crt_rate = 1.0;  // every recombination corrupted
  ChaosLayer chaos(chaos_options);
  Keystore keystore;
  keystore.AddTenant(1, {});
  keystore.AddKey(1, 1, TestKey());
  SigningService::Options options;
  options.chaos = &chaos;
  options.max_internal_retries = 2;
  SigningService service(std::move(keystore), options);

  const auto response = service.HandleRequestSync(
      EncodeSignRequest(MakeRequest(1, "doomed")));
  EXPECT_EQ(response.status, StatusCode::kInternalRetrying);
  const auto counters = service.Snapshot();
  EXPECT_EQ(counters.faults_caught, 3u);  // initial attempt + 2 retries
  EXPECT_EQ(counters.internal_retries, 2u);
  EXPECT_EQ(counters.ok, 0u);
  EXPECT_EQ(counters.bad_signatures_released, 0u);
}

// ---------------------------------------------------------------------------
// The acceptance scenario: one stalled worker + one flooding tenant,
// healthy tenants still served with typed errors for everything shed
// ---------------------------------------------------------------------------

TEST(ChaosSuite, StalledWorkerAndFloodingTenantDoNotStarveHealthyTenant) {
  ChaosOptions chaos_options;
  chaos_options.stall_worker = 0;       // 1 of 4 workers sleeps per group
  chaos_options.stall_micros = 3'000;
  ChaosLayer chaos(chaos_options);

  Keystore keystore;
  TenantConfig flooder;
  flooder.priority = 0;      // shed first under overload
  flooder.burst = 6;         // small budget: the flood hits backpressure
  flooder.refill_period_ticks = 1'000'000'000;  // 1 token/s: no refill here
  flooder.max_in_flight = 4;
  TenantConfig healthy;
  healthy.priority = 15;
  healthy.burst = 64;
  healthy.max_in_flight = 64;
  keystore.AddTenant(1, flooder);
  keystore.AddTenant(2, healthy);
  keystore.AddKey(1, 1, TestKey());
  keystore.AddKey(2, 1, TestKey());

  SigningService::Options options;
  options.service.workers = 4;
  options.chaos = &chaos;
  options.admission.queue_high_watermark = 16;
  SigningService service(std::move(keystore), options);

  // The flooding tenant fires 32 requests as fast as it can.
  std::atomic<int> flood_responses{0};
  std::atomic<int> flood_untyped{0};
  for (int i = 0; i < 32; ++i) {
    service.HandleRequest(
        EncodeSignRequest(MakeRequest(1, "flood " + std::to_string(i))),
        [&](SignResponse response) {
          ++flood_responses;
          // Everything the flood gets back is a typed outcome: served,
          // backpressured, or shed — never anything else, never nothing.
          if (response.status != StatusCode::kOk &&
              response.status != StatusCode::kRejectedBackpressure &&
              response.status != StatusCode::kShedOverload) {
            ++flood_untyped;
          }
        });
  }

  // The healthy tenant keeps signing with a generous deadline.
  int healthy_ok = 0;
  for (int i = 0; i < 8; ++i) {
    const auto message = Bytes("healthy " + std::to_string(i));
    auto request = MakeRequest(2, "");
    request.message = message;
    request.deadline_ticks = 10'000'000'000ull;  // 10 s
    const auto response =
        service.HandleRequestSync(EncodeSignRequest(request));
    if (response.status == StatusCode::kOk) {
      EXPECT_TRUE(Verifies(message, response.payload));
      ++healthy_ok;
    }
  }
  service.Wait();

  // Healthy tenant fully served despite the stall and the flood.
  EXPECT_EQ(healthy_ok, 8);
  // No request hangs, none lost, all typed.
  EXPECT_EQ(flood_responses.load(), 32);
  EXPECT_EQ(flood_untyped.load(), 0);
  // The stall was real (work stealing routed around it).
  EXPECT_GT(chaos.Snapshot().worker_stalls, 0u);
  // The flood's tiny budget produced typed backpressure.
  const auto counters = service.Snapshot();
  EXPECT_GT(counters.rejected_backpressure, 0u);
  EXPECT_EQ(counters.bad_signatures_released, 0u);
  // ExpService-level conservation held under chaos.
  const auto service_counters = service.ServiceSnapshot();
  EXPECT_EQ(service_counters.jobs_submitted,
            service_counters.jobs_completed +
                service_counters.deadline_exceeded);
}

// ---------------------------------------------------------------------------
// Transport chaos: dropped and garbled frames vs the retrying client
// ---------------------------------------------------------------------------

TEST(ChaosSuite, DroppedAndGarbledFramesAreSurvivedByRetryingClient) {
  ChaosOptions chaos_options;
  chaos_options.drop_request_rate = 0.15;
  chaos_options.drop_response_rate = 0.10;
  chaos_options.garble_frame_rate = 0.15;
  ChaosLayer chaos(chaos_options);

  Keystore keystore;
  keystore.AddTenant(1, {});
  keystore.AddKey(1, 1, TestKey());
  SigningService service(std::move(keystore));
  InProcTransport transport(service, &chaos);
  RetryPolicy policy;
  policy.max_attempts = 8;
  policy.base_backoff_micros = 10;
  policy.max_backoff_micros = 100;
  SigningClient client(transport, policy);

  int ok = 0;
  for (int i = 0; i < 20; ++i) {
    const auto message = Bytes("wire chaos " + std::to_string(i));
    const auto outcome = client.Sign(1, 1, message, /*deadline_ticks=*/0,
                                     /*idempotent=*/true);
    ASSERT_LE(outcome.attempts, policy.max_attempts);
    if (outcome.status == StatusCode::kOk) {
      EXPECT_TRUE(Verifies(message, outcome.signature));
      ++ok;
    } else {
      // A garbled frame decodes as malformed (permanent — the client
      // stops); an all-attempts-dropped request ends as a timeout.
      EXPECT_TRUE(outcome.status == StatusCode::kMalformedRequest ||
                  outcome.status == StatusCode::kTransportTimeout)
          << StatusCodeName(outcome.status);
    }
  }
  // The chaos fired...
  const auto chaos_counters = chaos.Snapshot();
  EXPECT_GT(chaos_counters.requests_dropped + chaos_counters.frames_garbled +
                chaos_counters.responses_dropped,
            0u);
  // ...and the client still got most signatures through.
  EXPECT_GT(ok, 10);
  service.Wait();
  EXPECT_EQ(service.Snapshot().bad_signatures_released, 0u);
}

TEST(ChaosSuite, SlowTenantDelaysOnlyItsOwnCalls) {
  ChaosOptions chaos_options;
  chaos_options.slow_tenant = 1;
  chaos_options.slow_tenant_micros = 2'000;
  ChaosLayer chaos(chaos_options);
  EXPECT_EQ(chaos.SlowTenantDelayMicros(1), 2'000u);
  EXPECT_EQ(chaos.SlowTenantDelayMicros(2), 0u);
}

// ---------------------------------------------------------------------------
// Everything at once
// ---------------------------------------------------------------------------

TEST(ChaosSuite, CombinedChaosReleasesOnlyVerifiedSignatures) {
  ChaosOptions chaos_options;
  chaos_options.stall_worker = 1;
  chaos_options.stall_micros = 1'000;
  chaos_options.corrupt_crt_rate = 0.4;
  chaos_options.drop_request_rate = 0.1;
  chaos_options.garble_frame_rate = 0.1;
  ChaosLayer chaos(chaos_options);

  Keystore keystore;
  keystore.AddTenant(1, {});
  keystore.AddKey(1, 1, TestKey());
  SigningService::Options options;
  options.service.workers = 2;
  options.chaos = &chaos;
  options.max_internal_retries = 4;
  SigningService service(std::move(keystore), options);
  InProcTransport transport(service, &chaos);
  RetryPolicy policy;
  policy.max_attempts = 6;
  policy.base_backoff_micros = 10;
  SigningClient client(transport, policy);

  int ok = 0;
  for (int i = 0; i < 16; ++i) {
    const auto message = Bytes("combined " + std::to_string(i));
    const auto outcome = client.Sign(1, 1, message, /*deadline_ticks=*/0,
                                     /*idempotent=*/true);
    if (outcome.status == StatusCode::kOk) {
      EXPECT_TRUE(Verifies(message, outcome.signature));
      ++ok;
    }
  }
  EXPECT_GT(ok, 0);
  service.Wait();
  const auto counters = service.Snapshot();
  EXPECT_EQ(counters.bad_signatures_released, 0u);
  const auto service_counters = service.ServiceSnapshot();
  EXPECT_EQ(service_counters.jobs_submitted,
            service_counters.jobs_completed +
                service_counters.deadline_exceeded);
}

}  // namespace
}  // namespace mont::server
