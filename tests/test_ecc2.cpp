// Tests for binary-curve ECC over GF(2^m): exhaustive group structure on a
// tiny curve, group laws on the AES-field curve, scalar-multiplication
// consistency, the K-163 workload end to end (batched ladders with every
// field inversion routed through the GF(2^m) exponentiation service), and
// backend interchangeability through the engine registry.
#include <gtest/gtest.h>

#include <vector>

#include "bignum/random.hpp"
#include "crypto/ecc2.hpp"
#include "testutil.hpp"

namespace mont::crypto {
namespace {

using bignum::BigUInt;

core::ExpService::Options Gf2ServiceOptions() {
  core::ExpService::Options options;
  options.engine_options.field = core::EngineField::kGf2;
  return options;
}

TEST(BinaryCurve, RejectsDegenerateCurve) {
  BinaryCurveParams params = BinaryCurveParams::Tiny16();
  params.b = BigUInt{0};
  EXPECT_THROW(BinaryCurve{params}, std::invalid_argument);
}

TEST(BinaryCurve, Tiny16PointCountSatisfiesHasse) {
  const BinaryCurve curve(BinaryCurveParams::Tiny16());
  const auto points = curve.EnumeratePoints();
  // Group order = affine points + identity; Hasse: |order - (q+1)| <= 2*sqrt(q).
  const double order = static_cast<double>(points.size() + 1);
  EXPECT_GE(order, 17.0 - 8.0);
  EXPECT_LE(order, 17.0 + 8.0);
}

TEST(BinaryCurve, Tiny16GroupLawsExhaustive) {
  const BinaryCurve curve(BinaryCurveParams::Tiny16());
  const auto points = curve.EnumeratePoints();
  ASSERT_FALSE(points.empty());
  for (const BinaryPoint& p : points) {
    // Negation and identity.
    const BinaryPoint neg = curve.Negate(p);
    EXPECT_TRUE(curve.IsOnCurve(neg));
    EXPECT_TRUE(curve.Add(p, neg).infinity);
    EXPECT_EQ(curve.Add(p, BinaryPoint::Infinity()), p);
    // Doubling stays on the curve.
    EXPECT_TRUE(curve.IsOnCurve(curve.Double(p)));
  }
  // Commutativity and associativity on a sample.
  for (std::size_t i = 0; i < points.size(); i += 3) {
    for (std::size_t j = 0; j < points.size(); j += 5) {
      const BinaryPoint sum = curve.Add(points[i], points[j]);
      EXPECT_TRUE(curve.IsOnCurve(sum));
      EXPECT_EQ(sum, curve.Add(points[j], points[i]));
      const BinaryPoint k = points[(i + j) % points.size()];
      EXPECT_EQ(curve.Add(curve.Add(points[i], points[j]), k),
                curve.Add(points[i], curve.Add(points[j], k)));
    }
  }
}

TEST(BinaryCurve, Tiny16ScalarMulMatchesRepeatedAddition) {
  const BinaryCurve curve(BinaryCurveParams::Tiny16());
  const auto points = curve.EnumeratePoints();
  const BinaryPoint g = points.front();
  BinaryPoint acc = BinaryPoint::Infinity();
  for (std::uint64_t k = 0; k <= 40; ++k) {
    EXPECT_EQ(curve.ScalarMul(BigUInt{k}, g), acc) << "k=" << k;
    acc = curve.Add(acc, g);
  }
}

TEST(BinaryCurve, AesFieldCurveHomomorphism) {
  const BinaryCurve curve(BinaryCurveParams::Aes256());
  const auto points = curve.EnumeratePoints();
  ASSERT_GT(points.size(), 16u);
  const BinaryPoint g = points[points.size() / 3];
  // (k1 + k2) G == k1 G + k2 G.
  const BigUInt k1{57}, k2{91};
  EXPECT_EQ(curve.ScalarMul(k1 + k2, g),
            curve.Add(curve.ScalarMul(k1, g), curve.ScalarMul(k2, g)));
}

TEST(BinaryCurve, Koblitz163Plumbing) {
  const BinaryCurve curve(BinaryCurveParams::Koblitz163());
  EXPECT_EQ(curve.FieldDegree(), 163u);
  // Derive a point: double-and-add from a constructed point is impossible
  // without a known generator, but curve membership and negation algebra
  // can be exercised on synthetic coordinates:
  const BinaryPoint not_on{BigUInt{2}, BigUInt{3}, false};
  EXPECT_FALSE(curve.IsOnCurve(not_on));
  EXPECT_TRUE(curve.IsOnCurve(BinaryPoint::Infinity()));
}

TEST(BinaryCurve, StatsCountOperations) {
  const BinaryCurve curve(BinaryCurveParams::Aes256());
  const auto points = curve.EnumeratePoints();
  // A point with x = 0 has order 2 and short-circuits the formulas; use a
  // generic point.
  BinaryPoint g;
  for (const BinaryPoint& p : points) {
    if (!p.x.IsZero()) {
      g = p;
      break;
    }
  }
  ASSERT_FALSE(g.x.IsZero());
  BinaryEccStats stats;
  curve.ScalarMul(BigUInt{0xf5}, g, &stats);
  EXPECT_GT(stats.field_mults, 0u);
  EXPECT_GT(stats.field_inversions, 0u);
  // Affine double/add: 1 inversion + ~4 multiplications each; 7 doubles +
  // 4 adds for 0xf5.
  EXPECT_LE(stats.field_inversions, 16u);
  EXPECT_GT(stats.EquivalentMults(8), stats.field_mults)
      << "inversions dominate on the multiplier";
}

// The curve arithmetic is backend-agnostic: the cycle-accurate dual-field
// array produces the same points as the software engine.
TEST(BinaryCurve, EngineBackendsAreInterchangeable) {
  const BinaryCurve software(BinaryCurveParams::Tiny16());
  const BinaryCurve hardware(BinaryCurveParams::Tiny16(), "mmmc");
  EXPECT_TRUE(hardware.FieldEngine().Caps().cycle_accurate);
  const auto points = software.EnumeratePoints();
  const BinaryPoint g = points.front();
  for (const std::uint64_t k : {1ull, 5ull, 11ull, 23ull}) {
    EXPECT_EQ(software.ScalarMul(BigUInt{k}, g),
              hardware.ScalarMul(BigUInt{k}, g))
        << "k=" << k;
  }
}

// ---------------------------------------------------------------------------
// Batched scalar multiplication through the GF(2^m) exponentiation service
// ---------------------------------------------------------------------------

TEST(BinaryCurve, ScalarMulBatchStressMatchesScalarOracle) {
  const BinaryCurve curve(BinaryCurveParams::Aes256());
  const auto points = curve.EnumeratePoints();
  BinaryPoint g;
  for (const BinaryPoint& p : points) {
    if (!p.x.IsZero()) {
      g = p;
      break;
    }
  }
  ASSERT_FALSE(g.x.IsZero());
  core::ExpService service(Gf2ServiceOptions());
  auto rng = test::TestRng();
  std::vector<BigUInt> scalars{BigUInt{0}, BigUInt{1}, BigUInt{2}};
  for (int j = 0; j < 29; ++j) {
    scalars.push_back(rng.ExactBits(1 + static_cast<std::size_t>(j) % 12));
  }
  BinaryEccStats stats;
  const auto batch = curve.ScalarMulBatch(scalars, g, service, &stats);
  ASSERT_EQ(batch.size(), scalars.size());
  for (std::size_t j = 0; j < scalars.size(); ++j) {
    EXPECT_EQ(batch[j], curve.ScalarMul(scalars[j], g)) << "j=" << j;
    EXPECT_TRUE(curve.IsOnCurve(batch[j])) << "j=" << j;
  }
  EXPECT_GT(stats.field_inversions, 0u);
  // The lockstep rounds queue same-modulus inversions together, so the
  // pairing scheduler must two-pack them onto the dual-field array.
  EXPECT_GT(service.Snapshot().pair_issues, 0u);

  const auto at_infinity =
      curve.ScalarMulBatch(scalars, BinaryPoint::Infinity(), service);
  for (const BinaryPoint& point : at_infinity) EXPECT_TRUE(point.infinity);
}

TEST(BinaryCurve, ScalarMulBatchRejectsGfpService) {
  const BinaryCurve curve(BinaryCurveParams::Tiny16());
  core::ExpService service;  // default: GF(p)
  const std::vector<BigUInt> scalars{BigUInt{3}};
  EXPECT_THROW(
      curve.ScalarMulBatch(scalars, BinaryPoint::Infinity(), service),
      std::invalid_argument);
}

// K-163 end to end: the NIST/SECG sect163k1 base point, batched scalar
// ladders, and every GF(2^163) inversion served as a z^(2^163 - 2) job
// through the registry-selected dual-field engine.
TEST(BinaryCurve, Koblitz163ScalarMulBatchEndToEnd) {
  const BinaryCurve curve(BinaryCurveParams::Koblitz163());
  const BinaryPoint g{
      BigUInt::FromHex("2fe13c0537bbc11acaa07d793de4e6d5e5c94eee8"),
      BigUInt::FromHex("289070fb05d38ff58321f2e800536d538ccdaa3d9"), false};
  ASSERT_TRUE(curve.IsOnCurve(g)) << "sect163k1 base point";
  core::ExpService service(Gf2ServiceOptions());
  auto rng = test::TestRng();
  const std::vector<BigUInt> scalars{BigUInt{1}, rng.ExactBits(8),
                                     rng.ExactBits(10)};
  BinaryEccStats stats;
  const auto batch = curve.ScalarMulBatch(scalars, g, service, &stats);
  ASSERT_EQ(batch.size(), scalars.size());
  EXPECT_EQ(batch[0], g);
  for (std::size_t j = 1; j < scalars.size(); ++j) {
    EXPECT_TRUE(curve.IsOnCurve(batch[j])) << "j=" << j;
    EXPECT_EQ(batch[j], curve.ScalarMul(scalars[j], g)) << "j=" << j;
  }
  EXPECT_GT(stats.field_inversions, 0u);
  EXPECT_GT(stats.EquivalentMults(curve.FieldDegree()), stats.field_mults)
      << "Fermat inversions dominate the multiplier cost at m = 163";
}

}  // namespace
}  // namespace mont::crypto
