// Tests for binary-curve ECC over GF(2^m): exhaustive group structure on a
// tiny curve, group laws on the AES-field curve, scalar-multiplication
// consistency, and the K-163 field plumbing.
#include <gtest/gtest.h>

#include "bignum/random.hpp"
#include "crypto/ecc2.hpp"

namespace mont::crypto {
namespace {

using bignum::BigUInt;

TEST(BinaryCurve, RejectsDegenerateCurve) {
  BinaryCurveParams params = BinaryCurveParams::Tiny16();
  params.b = BigUInt{0};
  EXPECT_THROW(BinaryCurve{params}, std::invalid_argument);
}

TEST(BinaryCurve, Tiny16PointCountSatisfiesHasse) {
  const BinaryCurve curve(BinaryCurveParams::Tiny16());
  const auto points = curve.EnumeratePoints();
  // Group order = affine points + identity; Hasse: |order - (q+1)| <= 2*sqrt(q).
  const double order = static_cast<double>(points.size() + 1);
  EXPECT_GE(order, 17.0 - 8.0);
  EXPECT_LE(order, 17.0 + 8.0);
}

TEST(BinaryCurve, Tiny16GroupLawsExhaustive) {
  const BinaryCurve curve(BinaryCurveParams::Tiny16());
  const auto points = curve.EnumeratePoints();
  ASSERT_FALSE(points.empty());
  for (const BinaryPoint& p : points) {
    // Negation and identity.
    const BinaryPoint neg = curve.Negate(p);
    EXPECT_TRUE(curve.IsOnCurve(neg));
    EXPECT_TRUE(curve.Add(p, neg).infinity);
    EXPECT_EQ(curve.Add(p, BinaryPoint::Infinity()), p);
    // Doubling stays on the curve.
    EXPECT_TRUE(curve.IsOnCurve(curve.Double(p)));
  }
  // Commutativity and associativity on a sample.
  for (std::size_t i = 0; i < points.size(); i += 3) {
    for (std::size_t j = 0; j < points.size(); j += 5) {
      const BinaryPoint sum = curve.Add(points[i], points[j]);
      EXPECT_TRUE(curve.IsOnCurve(sum));
      EXPECT_EQ(sum, curve.Add(points[j], points[i]));
      const BinaryPoint k = points[(i + j) % points.size()];
      EXPECT_EQ(curve.Add(curve.Add(points[i], points[j]), k),
                curve.Add(points[i], curve.Add(points[j], k)));
    }
  }
}

TEST(BinaryCurve, Tiny16ScalarMulMatchesRepeatedAddition) {
  const BinaryCurve curve(BinaryCurveParams::Tiny16());
  const auto points = curve.EnumeratePoints();
  const BinaryPoint g = points.front();
  BinaryPoint acc = BinaryPoint::Infinity();
  for (std::uint64_t k = 0; k <= 40; ++k) {
    EXPECT_EQ(curve.ScalarMul(BigUInt{k}, g), acc) << "k=" << k;
    acc = curve.Add(acc, g);
  }
}

TEST(BinaryCurve, AesFieldCurveHomomorphism) {
  const BinaryCurve curve(BinaryCurveParams::Aes256());
  const auto points = curve.EnumeratePoints();
  ASSERT_GT(points.size(), 16u);
  const BinaryPoint g = points[points.size() / 3];
  // (k1 + k2) G == k1 G + k2 G.
  const BigUInt k1{57}, k2{91};
  EXPECT_EQ(curve.ScalarMul(k1 + k2, g),
            curve.Add(curve.ScalarMul(k1, g), curve.ScalarMul(k2, g)));
}

TEST(BinaryCurve, Koblitz163Plumbing) {
  const BinaryCurve curve(BinaryCurveParams::Koblitz163());
  EXPECT_EQ(curve.FieldDegree(), 163u);
  // Derive a point: double-and-add from a constructed point is impossible
  // without a known generator, but curve membership and negation algebra
  // can be exercised on synthetic coordinates:
  const BinaryPoint not_on{BigUInt{2}, BigUInt{3}, false};
  EXPECT_FALSE(curve.IsOnCurve(not_on));
  EXPECT_TRUE(curve.IsOnCurve(BinaryPoint::Infinity()));
}

TEST(BinaryCurve, StatsCountOperations) {
  const BinaryCurve curve(BinaryCurveParams::Aes256());
  const auto points = curve.EnumeratePoints();
  // A point with x = 0 has order 2 and short-circuits the formulas; use a
  // generic point.
  BinaryPoint g;
  for (const BinaryPoint& p : points) {
    if (!p.x.IsZero()) {
      g = p;
      break;
    }
  }
  ASSERT_FALSE(g.x.IsZero());
  BinaryEccStats stats;
  curve.ScalarMul(BigUInt{0xf5}, g, &stats);
  EXPECT_GT(stats.field_mults, 0u);
  EXPECT_GT(stats.field_inversions, 0u);
  // Affine double/add: 1 inversion + ~4 multiplications each; 7 doubles +
  // 4 adds for 0xf5.
  EXPECT_LE(stats.field_inversions, 16u);
  EXPECT_GT(stats.EquivalentMults(8), stats.field_mults)
      << "inversions dominate on the multiplier";
}

}  // namespace
}  // namespace mont::crypto
