// Tests for the GF(2^m) / dual-field extension: polynomial arithmetic,
// field axioms, the polynomial Montgomery product on the paper's schedule,
// the Mmmc's GF(2^m) mode, and the dual-field gate-level variant.
#include <gtest/gtest.h>

#include "bignum/gf2.hpp"
#include "bignum/montgomery.hpp"
#include "bignum/random.hpp"
#include "core/mmmc.hpp"
#include "core/netlist_gen.hpp"
#include "core/schedule.hpp"
#include "fpga/device_model.hpp"
#include "rtl/simulator.hpp"
#include "testutil.hpp"
#include "testutil_netlist.hpp"

namespace mont::bignum {
namespace {

TEST(Gf2Poly, MulKnownValues) {
  // (x+1)(x+1) = x^2+1 over GF(2).
  EXPECT_EQ(gf2::Mul(BigUInt{0b11}, BigUInt{0b11}).ToUint64(), 0b101u);
  // (x^2+x+1)(x+1) = x^3+1.
  EXPECT_EQ(gf2::Mul(BigUInt{0b111}, BigUInt{0b11}).ToUint64(), 0b1001u);
  EXPECT_TRUE(gf2::Mul(BigUInt{0}, BigUInt{0b111}).IsZero());
}

TEST(Gf2Poly, ModKnownValues) {
  // x^8 mod (x^8+x^4+x^3+x+1) = x^4+x^3+x+1.
  EXPECT_EQ(gf2::Mod(BigUInt::PowerOfTwo(8), BigUInt{0x11b}).ToUint64(),
            0b11011u);
  EXPECT_TRUE(gf2::Mod(BigUInt{0x11b}, BigUInt{0x11b}).IsZero());
  EXPECT_THROW(gf2::Mod(BigUInt{5}, BigUInt{0}), std::domain_error);
}

TEST(Gf2Poly, MulIsCommutativeAndDistributes) {
  auto rng = test::TestRng();
  for (int trial = 0; trial < 30; ++trial) {
    const BigUInt a = rng.ExactBits(40);
    const BigUInt b = rng.ExactBits(35);
    const BigUInt c = rng.ExactBits(20);
    EXPECT_EQ(gf2::Mul(a, b), gf2::Mul(b, a));
    // a*(b+c) = a*b + a*c where + is XOR.
    const Gf2Field field = Gf2Field::Nist163();  // Add() is plain XOR
    EXPECT_EQ(gf2::Mul(a, field.Add(b, c)),
              field.Add(gf2::Mul(a, b), gf2::Mul(a, c)));
  }
}

TEST(Gf2Field, AesKnownInverse) {
  // In the AES field, 0x53 * 0xca = 1 (the classic S-box pair).
  const Gf2Field field = Gf2Field::Aes();
  EXPECT_TRUE(field.Mul(BigUInt{0x53}, BigUInt{0xca}).IsOne());
  EXPECT_EQ(field.Inverse(BigUInt{0x53}).ToUint64(), 0xcau);
  EXPECT_EQ(field.Inverse(BigUInt{0xca}).ToUint64(), 0x53u);
  EXPECT_THROW(field.Inverse(BigUInt{0}), std::domain_error);
}

TEST(Gf2Field, AesFieldAxiomsExhaustiveSample) {
  const Gf2Field field = Gf2Field::Aes();
  for (std::uint64_t a = 1; a < 256; a += 7) {
    const BigUInt inv = field.Inverse(BigUInt{a});
    EXPECT_TRUE(field.Mul(BigUInt{a}, inv).IsOne()) << a;
    // Frobenius: (a+b)^2 = a^2 + b^2.
    for (std::uint64_t b = 0; b < 256; b += 31) {
      const BigUInt sum = field.Add(BigUInt{a}, BigUInt{b});
      EXPECT_EQ(field.Square(sum),
                field.Add(field.Square(BigUInt{a}), field.Square(BigUInt{b})));
    }
  }
}

TEST(Gf2Field, Nist163Shape) {
  const Gf2Field field = Gf2Field::Nist163();
  EXPECT_EQ(field.Degree(), 163u);
  auto rng = test::TestRng();
  const BigUInt a = rng.ExactBits(160);
  EXPECT_TRUE(field.Mul(a, field.Inverse(a)).IsOne());
}

// MontMul satisfies result * x^(l+2) = a*b (mod f).
TEST(Gf2Montgomery, ProductDefinition) {
  auto rng = test::TestRng();
  for (const std::size_t degree : {8u, 16u, 64u, 163u}) {
    BigUInt f = rng.ExactBits(degree + 1);
    f.SetBit(0, true);
    for (int trial = 0; trial < 8; ++trial) {
      const BigUInt a = rng.ExactBits(degree);
      const BigUInt b = rng.ExactBits(degree);
      const BigUInt got = gf2::MontMul(a, b, f);
      const BigUInt lhs =
          gf2::Mod(gf2::Mul(got, BigUInt::PowerOfTwo(degree + 2)), f);
      EXPECT_EQ(lhs, gf2::Mod(gf2::Mul(a, b), f)) << "deg=" << degree;
    }
  }
}

}  // namespace
}  // namespace mont::bignum

namespace mont::core {
namespace {

using bignum::BigUInt;
using bignum::RandomBigUInt;

TEST(MmmcDualField, Gf2ModeMatchesSoftware) {
  auto rng = test::TestRng();
  for (const std::size_t degree : {4u, 8u, 16u, 48u}) {
    BigUInt f = rng.ExactBits(degree + 1);
    f.SetBit(0, true);
    Mmmc circuit(f, FieldMode::kGf2);
    EXPECT_EQ(circuit.l(), degree);
    for (int trial = 0; trial < 6; ++trial) {
      const BigUInt a = rng.ExactBits(degree + 1);
      const BigUInt b = rng.ExactBits(degree + 1);
      std::uint64_t cycles = 0;
      EXPECT_EQ(circuit.Multiply(a, b, &cycles),
                bignum::gf2::MontMul(a, b, f))
          << "deg=" << degree;
      EXPECT_EQ(cycles, MultiplyCycles(degree))
          << "GF(2^m) runs the same 3l+4 schedule";
    }
  }
}

TEST(MmmcDualField, Gf2ModeValidation) {
  EXPECT_THROW(Mmmc(BigUInt{0b10}, FieldMode::kGf2), std::invalid_argument)
      << "f(0) must be 1";
  EXPECT_THROW(Mmmc(BigUInt{0b11}, FieldMode::kGf2), std::invalid_argument)
      << "degree must be >= 2";
  Mmmc circuit(BigUInt{0b1011}, FieldMode::kGf2);  // x^3+x+1
  EXPECT_THROW(circuit.ApplyInputs(BigUInt::PowerOfTwo(4), BigUInt{1}),
               std::invalid_argument)
      << "operand degree must be <= l";
}

// AES-field multiplication end to end through the hardware model.
TEST(MmmcDualField, AesFieldOnHardware) {
  const BigUInt f{0x11b};
  Mmmc circuit(f, FieldMode::kGf2);
  const bignum::Gf2Field field = bignum::Gf2Field::Aes();
  // Mont(a, b) * x^10 = a*b in the field; verify via the software field.
  const BigUInt a{0x57}, b{0x83};
  const BigUInt mont = circuit.Multiply(a, b);
  const BigUInt product =
      field.Mul(mont, bignum::gf2::Mod(BigUInt::PowerOfTwo(10), f));
  EXPECT_EQ(product, field.Mul(a, b));
}

// Cross-domain check against the *other* software stacks.  In GF(p) mode
// the Mmmc (R = 2^(l+2)) and WordMontgomery (R = 2^(32*limbs)) use
// different Montgomery parameters, so each result is normalised out of its
// own domain; both must land on the plain x*y mod n.  In GF(2^k) mode the
// polynomial domain exit (multiply by x^(l+2) mod f) must agree with the
// software field product.
TEST(MmmcDualField, CrossCheckAgainstWordMontgomeryAndGf2Field) {
  auto rng = test::TestRng();
  for (const std::size_t bits : {16u, 33u, 64u, 128u}) {
    const BigUInt n = rng.OddExactBits(bits);
    Mmmc circuit(n, FieldMode::kGfP);
    const bignum::WordMontgomery word(n);
    const BigUInt r_hw = BigUInt::PowerOfTwo(bits + 2);
    const BigUInt r_sw = BigUInt::PowerOfTwo(32 * word.LimbCount());
    test::ForEachOperandPair(
        rng, n, /*trials=*/4, [&](const BigUInt& x, const BigUInt& y) {
          const BigUInt via_hw = (circuit.Multiply(x, y) * r_hw) % n;
          const BigUInt via_sw = (word.Multiply(x, y) * r_sw) % n;
          EXPECT_EQ(via_hw, (x * y) % n) << "bits=" << bits;
          EXPECT_EQ(via_sw, via_hw) << "bits=" << bits;
        });
  }
  for (const std::size_t degree : {8u, 16u, 48u}) {
    BigUInt f = rng.ExactBits(degree + 1);
    f.SetBit(0, true);
    Mmmc circuit(f, FieldMode::kGf2);
    for (int trial = 0; trial < 6; ++trial) {
      const BigUInt a = rng.ExactBits(degree);
      const BigUInt b = rng.ExactBits(degree);
      const BigUInt mont = circuit.Multiply(a, b);
      const BigUInt undone = bignum::gf2::Mod(
          bignum::gf2::Mul(mont, BigUInt::PowerOfTwo(degree + 2)), f);
      EXPECT_EQ(undone, bignum::gf2::Mod(bignum::gf2::Mul(a, b), f))
          << "deg=" << degree;
    }
  }
}

class DualFieldNetlist : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DualFieldNetlist, GfPModeMatchesSingleFieldBehaviour) {
  const std::size_t bits = GetParam();
  auto rng = test::TestRng();
  const BigUInt n = rng.OddExactBits(bits);
  const MmmcNetlist gen = BuildMmmcNetlist(bits, /*dual_field=*/true);
  ASSERT_NE(gen.fsel, rtl::kNoNet);
  test::MmmcNetlistDriver drv(gen);
  Mmmc model(n);
  drv.SelectField(/*gfp=*/true);
  drv.LoadModulus(n);
  const BigUInt two_n = n << 1;
  for (int trial = 0; trial < 3; ++trial) {
    const BigUInt x = rng.Below(two_n);
    const BigUInt y = rng.Below(two_n);
    EXPECT_EQ(drv.Multiply(x, y), model.Multiply(x, y)) << "bits=" << bits;
  }
}

TEST_P(DualFieldNetlist, Gf2ModeMatchesPolynomialMontgomery) {
  const std::size_t degree = GetParam();
  auto rng = test::TestRng();
  BigUInt f = rng.ExactBits(degree + 1);
  f.SetBit(0, true);
  const MmmcNetlist gen = BuildMmmcNetlist(degree, /*dual_field=*/true);
  test::MmmcNetlistDriver drv(gen);
  drv.SelectField(/*gfp=*/false);  // GF(2^m)
  drv.LoadModulus(f);
  for (int trial = 0; trial < 3; ++trial) {
    const BigUInt a = rng.ExactBits(degree + 1);
    const BigUInt b = rng.ExactBits(degree + 1);
    std::uint64_t cycles = 0;
    EXPECT_EQ(drv.Multiply(a, b, &cycles), bignum::gf2::MontMul(a, b, f))
        << "deg=" << degree;
    EXPECT_EQ(cycles, MultiplyCycles(degree));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, DualFieldNetlist,
                         ::testing::Values(4, 5, 8, 16, 24));

TEST(DualFieldNetlist, AreaOverheadIsSmall) {
  // The dual-field capability must cost only the carry-gating ANDs —
  // a few percent, as the Savaş et al. design promises.
  const std::size_t l = 128;
  const auto single = BuildMmmcNetlist(l, false);
  const auto dual = BuildMmmcNetlist(l, true);
  const auto rs = fpga::AnalyzeNetlist(*single.netlist);
  const auto rd = fpga::AnalyzeNetlist(*dual.netlist);
  EXPECT_GE(rd.slices, rs.slices);
  EXPECT_LT(static_cast<double>(rd.slices),
            static_cast<double>(rs.slices) * 1.35);
  EXPECT_EQ(rd.flip_flops, rs.flip_flops);
}

}  // namespace
}  // namespace mont::core
