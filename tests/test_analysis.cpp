// test_analysis — the static-analysis layer: taint lattice transfer rules
// on micro-netlists, structural lint rules on deliberately defective
// graphs, lint-cleanliness + taint shape of every generated circuit
// family, the 64-lane differential soundness crosscheck, and functional
// verification of the gate-level exponentiator (plain and masked) against
// the software Montgomery flow.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "analysis/crosscheck.hpp"
#include "analysis/lint.hpp"
#include "analysis/taint.hpp"
#include "bignum/biguint.hpp"
#include "bignum/montgomery.hpp"
#include "core/netlist_gen.hpp"
#include "rtl/batch_sim.hpp"
#include "rtl/components.hpp"
#include "rtl/netlist.hpp"
#include "testutil_netlist.hpp"

namespace mont {
namespace {

using analysis::AnalyzeTaint;
using analysis::CrosscheckOptions;
using analysis::CrosscheckResult;
using analysis::LintReport;
using analysis::LintRule;
using analysis::RunDifferentialCrosscheck;
using analysis::RunLint;
using analysis::TaintLabel;
using analysis::TaintReport;
using bignum::BigUInt;
using bignum::BitSerialMontgomery;
using rtl::kNoNet;
using rtl::NetId;
using rtl::Netlist;

bool HasFinding(const std::vector<analysis::LintFinding>& findings,
                LintRule rule, NetId net) {
  for (const auto& f : findings) {
    if (f.rule == rule && f.net == net) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Taint lattice: transfer rules on micro-netlists
// ---------------------------------------------------------------------------

TEST(TaintLattice, XorWithFreshRandomnessBlinds) {
  Netlist nl;
  const NetId s = nl.AddInput("s");
  const NetId r = nl.AddInput("r");
  nl.MarkSecret(s);
  nl.MarkRandom(r, 0);
  const NetId share = nl.Xor(s, r);
  const TaintReport t = AnalyzeTaint(nl);
  EXPECT_EQ(t.LabelOf(s), TaintLabel::kSecret);
  EXPECT_EQ(t.LabelOf(r), TaintLabel::kRandom);
  EXPECT_EQ(t.LabelOf(share), TaintLabel::kBlinded);
}

TEST(TaintLattice, XorWithSameMaskUnblinds) {
  Netlist nl;
  const NetId s = nl.AddInput("s");
  const NetId r = nl.AddInput("r");
  nl.MarkSecret(s);
  nl.MarkRandom(r, 0);
  const NetId share = nl.Xor(s, r);
  // share XOR r == s: the mask cancels, so the label must collapse back.
  const NetId unmasked = nl.Xor(share, r);
  const TaintReport t = AnalyzeTaint(nl);
  EXPECT_EQ(t.LabelOf(unmasked), TaintLabel::kSecret);
}

TEST(TaintLattice, XorWithSecondFreshMaskStaysBlinded) {
  Netlist nl;
  const NetId s = nl.AddInput("s");
  const NetId r0 = nl.AddInput("r0");
  const NetId r1 = nl.AddInput("r1");
  nl.MarkSecret(s);
  nl.MarkRandom(r0, 0);
  nl.MarkRandom(r1, 1);
  const NetId remasked = nl.Xor(nl.Xor(s, r0), r1);
  const TaintReport t = AnalyzeTaint(nl);
  EXPECT_EQ(t.LabelOf(remasked), TaintLabel::kBlinded);
}

TEST(TaintLattice, NonlinearGateRespectsMaskDisjointness) {
  Netlist nl;
  const NetId s = nl.AddInput("s");
  const NetId r0 = nl.AddInput("r0");
  const NetId r1 = nl.AddInput("r1");
  const NetId pub = nl.AddInput("pub");
  nl.MarkSecret(s);
  nl.MarkRandom(r0, 0);
  nl.MarkRandom(r1, 1);
  const NetId share = nl.Xor(s, r0);  // Blinded{0}
  // AND against randomness of the blinding group couples the mask with the
  // value ((s^r)&r leaks s in the marginal); a fresh group does not.
  const NetId overlap = nl.And(share, r0);
  const NetId fresh = nl.And(share, r1);
  const NetId with_pub = nl.And(share, pub);
  const NetId with_secret = nl.And(pub, s);
  const TaintReport t = AnalyzeTaint(nl);
  EXPECT_EQ(t.LabelOf(overlap), TaintLabel::kSecret);
  EXPECT_EQ(t.LabelOf(fresh), TaintLabel::kBlinded);
  EXPECT_EQ(t.LabelOf(with_pub), TaintLabel::kBlinded);
  EXPECT_EQ(t.LabelOf(with_secret), TaintLabel::kSecret);
}

TEST(TaintLattice, BlindedSharesWithOverlappingMasksUnblind) {
  Netlist nl;
  const NetId s0 = nl.AddInput("s0");
  const NetId s1 = nl.AddInput("s1");
  const NetId r = nl.AddInput("r");
  nl.MarkSecret(s0);
  nl.MarkSecret(s1);
  nl.MarkRandom(r, 0);
  const NetId a = nl.Xor(s0, r);
  const NetId b = nl.Xor(s1, r);
  // a XOR b == s0 XOR s1: both masks are the same randomness and cancel.
  const NetId combined = nl.Xor(a, b);
  const TaintReport t = AnalyzeTaint(nl);
  EXPECT_EQ(t.LabelOf(a), TaintLabel::kBlinded);
  EXPECT_EQ(t.LabelOf(b), TaintLabel::kBlinded);
  EXPECT_EQ(t.LabelOf(combined), TaintLabel::kSecret);
}

TEST(TaintLattice, MuxSelectTaintsOutput) {
  Netlist nl;
  const NetId s = nl.AddInput("s");
  const NetId a = nl.AddInput("a");
  const NetId b = nl.AddInput("b");
  nl.MarkSecret(s);
  const NetId by_secret_sel = nl.Mux(s, a, b);
  const NetId by_clean_sel = nl.Mux(a, b, s);
  const TaintReport t = AnalyzeTaint(nl);
  EXPECT_EQ(t.LabelOf(by_secret_sel), TaintLabel::kSecret);
  EXPECT_EQ(t.LabelOf(by_clean_sel), TaintLabel::kSecret);
}

TEST(TaintLattice, MuxWithCleanSelectJoinsDisjunctively) {
  Netlist nl;
  const NetId sel = nl.AddInput("sel");
  const NetId s = nl.AddInput("s");
  const NetId r = nl.AddInput("r");
  nl.MarkSecret(s);
  nl.MarkRandom(r, 0);
  const NetId share = nl.Xor(s, r);
  // Recirculation idiom: selecting between two values that involve the
  // SAME mask group must not escalate (the output equals one of them).
  const NetId recirc = nl.Mux(sel, share, share);
  const TaintReport t = AnalyzeTaint(nl);
  EXPECT_EQ(t.LabelOf(recirc), TaintLabel::kBlinded);
}

TEST(TaintLattice, DffCarriesTaintAcrossState) {
  Netlist nl;
  const NetId s = nl.AddInput("s");
  const NetId r = nl.AddInput("r");
  const NetId en = nl.AddInput("en");
  nl.MarkSecret(s);
  nl.MarkRandom(r, 0);
  const NetId share = nl.Xor(s, r);
  const NetId q0 = nl.Dff(share, en);
  const NetId q1 = nl.Dff(q0, en);
  const NetId q_secret_en = nl.Dff(nl.AddInput("pub"), s);
  const TaintReport t = AnalyzeTaint(nl);
  EXPECT_EQ(t.LabelOf(q0), TaintLabel::kBlinded);
  EXPECT_EQ(t.LabelOf(q1), TaintLabel::kBlinded);
  // A secret clock-enable imprints the secret on the held value.
  EXPECT_EQ(t.LabelOf(q_secret_en), TaintLabel::kSecret);
}

TEST(TaintLattice, MaskedShareShiftRegisterStaysBlinded) {
  // The masked exponentiator's key register file in miniature: an l-bit
  // share (e XOR r, per-bit fresh groups) recirculating through a shift
  // register.  The disjunctive DFF/MUX join must keep every stage Blinded
  // even though shifted stages accumulate each other's mask groups.
  Netlist nl;
  constexpr std::size_t kBits = 4;
  const rtl::Bus e = rtl::InputBus(nl, "e", kBits);
  const rtl::Bus r = rtl::InputBus(nl, "r", kBits);
  const NetId load = nl.AddInput("load");
  const NetId shift = nl.AddInput("shift");
  rtl::Bus share(kBits);
  for (std::size_t i = 0; i < kBits; ++i) {
    nl.MarkSecret(e[i]);
    nl.MarkRandom(r[i], static_cast<unsigned>(i));
    share[i] = nl.Xor(e[i], r[i]);
  }
  const rtl::Bus q =
      rtl::ShiftLeftRegister(nl, share, load, shift, nl.Const0());
  const TaintReport t = AnalyzeTaint(nl);
  for (std::size_t i = 0; i < kBits; ++i) {
    EXPECT_EQ(t.LabelOf(q[i]), TaintLabel::kBlinded) << "stage " << i;
  }
  // Recombining the share with its own mask group ends the blinding.
  Netlist nl2;
  const NetId s2 = nl2.AddInput("s");
  const NetId r2 = nl2.AddInput("r");
  nl2.MarkSecret(s2);
  nl2.MarkRandom(r2, 7);
  const NetId q2 = nl2.Dff(nl2.Xor(s2, r2));
  const NetId recombined = nl2.Xor(q2, nl2.Dff(r2));
  const TaintReport t2 = AnalyzeTaint(nl2);
  EXPECT_EQ(t2.LabelOf(recombined), TaintLabel::kSecret);
}

TEST(TaintLattice, RandomOnlyLogicStaysRandom) {
  Netlist nl;
  const NetId r0 = nl.AddInput("r0");
  const NetId r1 = nl.AddInput("r1");
  const NetId pub = nl.AddInput("pub");
  nl.MarkRandom(r0, 0);
  nl.MarkRandom(r1, 1);
  const NetId x = nl.Xor(r0, r1);
  const NetId y = nl.And(x, pub);
  const NetId cancel = nl.Xor(r0, r0);
  const TaintReport t = AnalyzeTaint(nl);
  EXPECT_EQ(t.LabelOf(x), TaintLabel::kRandom);
  EXPECT_EQ(t.LabelOf(y), TaintLabel::kRandom);
  EXPECT_EQ(t.LabelOf(cancel), TaintLabel::kRandom);
  EXPECT_EQ(t.LabelOf(pub), TaintLabel::kClean);
}

TEST(TaintLattice, ForcedAnnotationOnInternalNet) {
  Netlist nl;
  const NetId a = nl.AddInput("a");
  const NetId g = nl.Buf(a);
  nl.MarkSecret(g);  // key material entering mid-circuit
  const NetId h = nl.Not(g);
  const TaintReport t = AnalyzeTaint(nl);
  EXPECT_EQ(t.LabelOf(a), TaintLabel::kClean);
  EXPECT_EQ(t.LabelOf(g), TaintLabel::kSecret);
  EXPECT_EQ(t.LabelOf(h), TaintLabel::kSecret);
}

TEST(TaintLattice, WitnessPathWalksBackToASecretSource) {
  Netlist nl;
  const NetId s = nl.AddInput("s");
  const NetId p = nl.AddInput("p");
  nl.MarkSecret(s);
  const NetId g1 = nl.And(s, p);
  const NetId g2 = nl.Xor(g1, p);
  const NetId g3 = nl.Dff(g2);
  const TaintReport t = AnalyzeTaint(nl);
  const std::vector<NetId> path = t.WitnessPath(g3);
  ASSERT_GE(path.size(), 2u);
  EXPECT_EQ(path.front(), g3);
  EXPECT_EQ(path.back(), s);
  for (const NetId net : path) {
    EXPECT_TRUE(analysis::DependsOnSecret(t.LabelOf(net)));
  }
  EXPECT_TRUE(t.WitnessPath(p).empty());
}

TEST(TaintLattice, MaskGroupOverflowIsConservative) {
  Netlist nl;
  const NetId s = nl.AddInput("s");
  nl.MarkSecret(s);
  NetId acc = s;
  // 70 distinct groups: the dense bitset saturates at 64 and the report
  // must say so (overflow groups alias, preventing disjointness proofs).
  for (unsigned g = 0; g < 70; ++g) {
    const NetId r = nl.AddInput(rtl::IndexedName("r", g));
    nl.MarkRandom(r, g);
    acc = nl.Xor(acc, r);
  }
  const TaintReport t = AnalyzeTaint(nl);
  EXPECT_TRUE(t.mask_groups_overflowed);
  EXPECT_NE(t.LabelOf(acc), TaintLabel::kClean);
}

TEST(TaintLattice, CountsPartitionTheNetlist) {
  const core::ExponentiatorNetlist exp = core::BuildExponentiatorNetlist(4);
  const TaintReport t = AnalyzeTaint(*exp.netlist);
  std::size_t total = 0, logic_total = 0;
  for (int l = 0; l < 4; ++l) {
    total += t.counts[l];
    logic_total += t.logic_counts[l];
  }
  EXPECT_EQ(total, exp.netlist->NodeCount());
  std::size_t expect_logic = 0;  // everything but inputs and constants
  for (std::size_t i = 0; i < exp.netlist->NodeCount(); ++i) {
    const rtl::Op op = exp.netlist->NodeAt(static_cast<NetId>(i)).op;
    if (op != rtl::Op::kInput && op != rtl::Op::kConst0 &&
        op != rtl::Op::kConst1) {
      ++expect_logic;
    }
  }
  EXPECT_EQ(logic_total, expect_logic);
}

// ---------------------------------------------------------------------------
// Structural lint: defective graphs built on purpose
// ---------------------------------------------------------------------------

TEST(Lint, DetectsCombinationalLoopWithoutThrowing) {
  Netlist nl;
  const NetId x = nl.AddInput("x");
  const NetId g1 = nl.And(x, x);
  const NetId g2 = nl.Or(g1, x);
  nl.MarkOutput(g2, "out");
  nl.RewireOperand(g1, 1, g2);  // g1 <-> g2 cycle
  const LintReport report = RunLint(nl);
  EXPECT_TRUE(HasFinding(report.findings, LintRule::kCombLoop, g1));
  EXPECT_TRUE(HasFinding(report.findings, LintRule::kCombLoop, g2));
  EXPECT_THROW(nl.TopoOrder(), std::logic_error);  // the sim would refuse
}

TEST(Lint, DetectsFloatingOperands) {
  Netlist nl;
  const NetId orphan_dff = nl.Dff(kNoNet);  // d never wired
  const NetId x = nl.AddInput("x");
  const NetId gate = nl.And(x, x);
  nl.MarkOutput(gate, "out");
  nl.MarkOutput(orphan_dff, "q");
  nl.RewireOperand(gate, 0, kNoNet);  // gut one gate operand
  const LintReport report = RunLint(nl);
  EXPECT_TRUE(HasFinding(report.findings, LintRule::kFloatingOperand,
                         orphan_dff));
  EXPECT_TRUE(HasFinding(report.findings, LintRule::kFloatingOperand, gate));
  // Re-wiring the DFF clears its finding.
  nl.RewireDff(orphan_dff, x);
  nl.RewireOperand(gate, 0, x);
  EXPECT_FALSE(HasFinding(RunLint(nl).findings, LintRule::kFloatingOperand,
                          orphan_dff));
}

TEST(Lint, UnusedDeadAndWaived) {
  Netlist nl;
  const NetId x = nl.AddInput("x");
  const NetId y = nl.AddInput("y");
  const NetId used = nl.And(x, y);
  nl.MarkOutput(used, "out");
  const NetId feeder = nl.Xor(x, y);    // consumed only by `leaf`
  const NetId leaf = nl.Not(feeder);    // consumed by nobody
  LintReport report = RunLint(nl);
  EXPECT_TRUE(HasFinding(report.findings, LintRule::kUnusedNet, leaf));
  EXPECT_TRUE(HasFinding(report.findings, LintRule::kDeadNet, feeder));
  EXPECT_FALSE(HasFinding(report.findings, LintRule::kUnusedNet, used));

  // A waiver on the leaf covers its whole dead fanin cone and moves the
  // finding to the waived list.
  nl.WaiveLint(leaf, "probe register kept for the testbench");
  report = RunLint(nl);
  EXPECT_TRUE(report.Clean());
  ASSERT_EQ(report.waived.size(), 1u);
  EXPECT_EQ(report.waived[0].net, leaf);
  EXPECT_TRUE(report.stale_waivers.empty());

  // A waiver that matches nothing is reported as stale.
  nl.WaiveLint(used, "obsolete reason");
  report = RunLint(nl);
  ASSERT_EQ(report.stale_waivers.size(), 1u);
  EXPECT_EQ(report.stale_waivers[0], used);
}

TEST(Lint, DetectsPortNameCollisionsAndAliases) {
  Netlist nl;
  const NetId a = nl.AddInput("a");
  const NetId a2 = nl.AddInput("a");  // duplicate input name
  const NetId g = nl.Or(a, a2);
  nl.MarkOutput(g, "out");
  nl.MarkOutput(g, "out_alias");  // same net, second name
  const NetId h = nl.Not(g);
  nl.MarkOutput(h, "out");  // duplicate output name
  const LintReport report = RunLint(nl);
  EXPECT_TRUE(HasFinding(report.findings, LintRule::kDuplicatePortName, a2));
  EXPECT_TRUE(HasFinding(report.findings, LintRule::kDuplicatePortName, h));
  EXPECT_TRUE(HasFinding(report.findings, LintRule::kAliasedOutput, g));
}

TEST(Lint, ProfilesDepthAndFanout) {
  Netlist nl;
  const NetId x = nl.AddInput("x");
  const NetId g1 = nl.Not(x);
  const NetId g2 = nl.Not(g1);
  const NetId g3 = nl.Not(g2);
  nl.MarkOutput(g3, "out");
  nl.MarkOutput(nl.And(x, g1), "out2");  // x fans out to g1 and this
  const LintReport report = RunLint(nl);
  EXPECT_EQ(report.max_depth, 3u);
  ASSERT_EQ(report.depth_histogram.size(), 4u);
  EXPECT_EQ(report.depth_histogram[3], 1u);  // g3 alone at depth 3
  EXPECT_GE(report.max_fanout, 2u);
}

TEST(Lint, GeneratedCircuitsAreCleanModuloDocumentedWaivers) {
  const auto check = [](const Netlist& nl, const std::string& name) {
    const LintReport report = RunLint(nl);
    EXPECT_TRUE(report.Clean()) << name << ":\n"
                                << FormatLintReport(nl, report);
    EXPECT_TRUE(report.stale_waivers.empty()) << name;
  };
  check(*core::BuildMmmcNetlist(4).netlist, "mmmc4");
  check(*core::BuildMmmcNetlist(8).netlist, "mmmc8");
  check(*core::BuildMmmcNetlist(4, true).netlist, "mmmc4_dual");
  check(*core::BuildSystolicArrayComb(4).netlist, "cells4");
  check(*core::BuildExponentiatorNetlist(4).netlist, "exp4");
  core::ExponentiatorNetlistOptions masked;
  masked.mask_exponent = true;
  check(*core::BuildExponentiatorNetlist(4, masked).netlist, "exp4_masked");
}

// ---------------------------------------------------------------------------
// Taint shape of the generated circuits
// ---------------------------------------------------------------------------

TEST(GeneratedTaint, MmmcDatapathIsSecretControlIsClean) {
  const core::MmmcNetlist gen = core::BuildMmmcNetlist(4);
  const TaintReport t = AnalyzeTaint(*gen.netlist);
  for (const NetId bit : gen.result) {
    EXPECT_EQ(t.LabelOf(bit), TaintLabel::kSecret);
  }
  // The paper's schedule is operand-independent: DONE, the state bits and
  // the comparator live outside the secret cone.
  EXPECT_EQ(t.LabelOf(gen.done), TaintLabel::kClean);
  EXPECT_EQ(t.LabelOf(gen.state_s0), TaintLabel::kClean);
  EXPECT_EQ(t.LabelOf(gen.state_s1), TaintLabel::kClean);
  EXPECT_EQ(t.LabelOf(gen.count_end), TaintLabel::kClean);
}

TEST(GeneratedTaint, MaskedExponentiatorShowsTheBlindingCut) {
  const core::ExponentiatorNetlist plain = core::BuildExponentiatorNetlist(4);
  core::ExponentiatorNetlistOptions opt;
  opt.mask_exponent = true;
  const core::ExponentiatorNetlist masked =
      core::BuildExponentiatorNetlist(4, opt);
  const TaintReport tp = AnalyzeTaint(*plain.netlist);
  const TaintReport tm = AnalyzeTaint(*masked.netlist);
  const auto secret_logic = [](const TaintReport& t) {
    return t.logic_counts[static_cast<std::size_t>(TaintLabel::kSecret)];
  };
  const auto blinded_logic = [](const TaintReport& t) {
    return t.logic_counts[static_cast<std::size_t>(TaintLabel::kBlinded)];
  };
  // The acceptance criterion: the masked twin's Secret cone is strictly
  // smaller — the key register file moved from Secret to Blinded.
  EXPECT_LT(secret_logic(tm), secret_logic(tp));
  EXPECT_GT(blinded_logic(tm), 0u);
  EXPECT_EQ(blinded_logic(tp), 0u);
  // Both schedules are exponent-independent at the label level.
  EXPECT_EQ(tp.LabelOf(plain.done), TaintLabel::kClean);
  EXPECT_EQ(tm.LabelOf(masked.done), TaintLabel::kClean);
  for (const NetId bit : masked.e_in) {
    EXPECT_EQ(tm.LabelOf(bit), TaintLabel::kSecret);
  }
  for (const NetId bit : masked.r_in) {
    EXPECT_EQ(tm.LabelOf(bit), TaintLabel::kRandom);
  }
}

// ---------------------------------------------------------------------------
// Dynamic soundness crosscheck
// ---------------------------------------------------------------------------

TEST(Crosscheck, GeneratedCircuitsAreSound) {
  struct Case {
    const char* name;
    std::unique_ptr<Netlist> netlist;
    std::size_t expect_secret_bits;
    std::size_t ticks;
  };
  core::ExponentiatorNetlistOptions masked;
  masked.mask_exponent = true;
  std::vector<Case> cases;
  cases.push_back({"mmmc4", core::BuildMmmcNetlist(4).netlist, 10, 256});
  cases.push_back(
      {"cells4", core::BuildSystolicArrayComb(4).netlist, 9, 64});
  cases.push_back(
      {"exp4", core::BuildExponentiatorNetlist(4).netlist, 4, 768});
  cases.push_back(
      {"exp4_masked", core::BuildExponentiatorNetlist(4, masked).netlist, 4,
       768});
  for (const Case& c : cases) {
    const TaintReport taint = AnalyzeTaint(*c.netlist);
    CrosscheckOptions opt;
    opt.ticks = c.ticks;
    const CrosscheckResult result =
        RunDifferentialCrosscheck(*c.netlist, taint, opt);
    EXPECT_TRUE(result.Sound())
        << c.name << ":\n"
        << FormatCrosscheckResult(*c.netlist, result);
    EXPECT_EQ(result.secret_bits, c.expect_secret_bits) << c.name;
    EXPECT_GT(result.differing_nets, 0u) << c.name;
    EXPECT_GT(result.tainted_coverage, 0.5) << c.name;
  }
}

TEST(Crosscheck, DetectsAnUnsoundLabel) {
  const core::MmmcNetlist gen = core::BuildMmmcNetlist(4);
  TaintReport taint = AnalyzeTaint(*gen.netlist);
  // Sabotage: claim a result bit is Clean.  The differential runs must
  // catch it (result bits demonstrably depend on the secret operands).
  const NetId victim = gen.result[0];
  taint.label[victim] = TaintLabel::kClean;
  CrosscheckOptions opt;
  opt.ticks = 256;
  const CrosscheckResult result =
      RunDifferentialCrosscheck(*gen.netlist, taint, opt);
  EXPECT_FALSE(result.Sound());
  EXPECT_EQ(result.violations.size(), 1u);
  EXPECT_EQ(result.violations[0], victim);
}

TEST(Crosscheck, RequiresASecretInput) {
  Netlist nl;
  const NetId a = nl.AddInput("a");
  nl.MarkOutput(nl.Not(a), "out");
  const TaintReport taint = AnalyzeTaint(nl);
  EXPECT_THROW(RunDifferentialCrosscheck(nl, taint, {}),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Exponentiator netlist: functional equivalence with the software flow
// ---------------------------------------------------------------------------

/// Runs one exponentiation on the netlist (lane 0) and returns the raw
/// Montgomery-domain result; fails the test if DONE never rises.
BigUInt RunNetlistExp(const core::ExponentiatorNetlist& gen,
                      rtl::BatchSimulator& sim, const BigUInt& n,
                      const BigUInt& xbar, const BigUInt& one,
                      const BigUInt& e, const BigUInt& r_mask) {
  sim.Reset();
  test::SetBusAllLanes(sim, gen.x_in, xbar);
  test::SetBusAllLanes(sim, gen.one_in, one);
  test::SetBusAllLanes(sim, gen.n_in, n);
  test::SetBusAllLanes(sim, gen.e_in, e);
  if (gen.masked) test::SetBusAllLanes(sim, gen.r_in, r_mask);
  sim.SetInputAll(gen.start, true);
  sim.Tick();
  sim.SetInputAll(gen.start, false);
  // l scan steps of (square MMM + multiply MMM), each 3l+4 cycles plus
  // handshake slack.
  const std::size_t cap = gen.l * 2 * (3 * gen.l + 16) + 64;
  for (std::size_t cycle = 0; cycle < cap; ++cycle) {
    sim.Tick();
    if (sim.PeekLane(gen.done, 0)) {
      return sim.PeekWide(gen.result, 0);
    }
  }
  ADD_FAILURE() << "exponentiator netlist never raised DONE (l = " << gen.l
                << ")";
  return BigUInt{};
}

/// Bit-exact software emulation of the netlist's multiply-always schedule.
BigUInt EmulateExpSchedule(const BitSerialMontgomery& ctx, const BigUInt& xbar,
                           const BigUInt& one, const BigUInt& e,
                           std::size_t l) {
  BigUInt a = one;
  for (std::size_t i = l; i-- > 0;) {
    a = ctx.MultiplyAlg2(a, a);
    const BigUInt t = ctx.MultiplyAlg2(a, xbar);
    if (e.Bit(i)) a = t;
  }
  return a;
}

TEST(ExponentiatorNetlist, MatchesSoftwareMontgomeryFlow) {
  const BigUInt n(53);  // l = 6
  const BitSerialMontgomery ctx(n);
  const core::ExponentiatorNetlist gen = core::BuildExponentiatorNetlist(6);
  ASSERT_EQ(ctx.l(), gen.l);
  rtl::BatchSimulator sim(*gen.netlist);
  const BigUInt one = ctx.ToMont(BigUInt(1));
  for (const std::uint64_t x : {2ull, 17ull, 45ull}) {
    for (const std::uint64_t e : {0ull, 1ull, 37ull, 63ull}) {
      const BigUInt xbar = ctx.ToMont(BigUInt(x));
      const BigUInt got =
          RunNetlistExp(gen, sim, n, xbar, one, BigUInt(e), BigUInt(0));
      // Bit-exact against the emulated schedule, and congruent to x^e.
      EXPECT_EQ(got, EmulateExpSchedule(ctx, xbar, one, BigUInt(e), gen.l))
          << "x=" << x << " e=" << e;
      EXPECT_EQ(ctx.FromMont(got), ctx.ModExp(BigUInt(x), BigUInt(e)))
          << "x=" << x << " e=" << e;
    }
  }
}

TEST(ExponentiatorNetlist, MaskedVariantComputesTheSameFunction) {
  const BigUInt n(53);
  const BitSerialMontgomery ctx(n);
  core::ExponentiatorNetlistOptions opt;
  opt.mask_exponent = true;
  const core::ExponentiatorNetlist gen =
      core::BuildExponentiatorNetlist(6, opt);
  rtl::BatchSimulator sim(*gen.netlist);
  const BigUInt one = ctx.ToMont(BigUInt(1));
  const BigUInt xbar = ctx.ToMont(BigUInt(29));
  const BigUInt e(45);
  const BigUInt expect = EmulateExpSchedule(ctx, xbar, one, e, gen.l);
  // The mask must be functionally invisible: any r gives the same result.
  for (const std::uint64_t r : {0ull, 0b101101ull, 0b111111ull, 0b010010ull}) {
    EXPECT_EQ(RunNetlistExp(gen, sim, n, xbar, one, e, BigUInt(r)), expect)
        << "r=" << r;
  }
}

TEST(ExponentiatorNetlist, DonePulsesOnceAndResultHolds) {
  const BigUInt n(13);  // l = 4
  const BitSerialMontgomery ctx(n);
  const core::ExponentiatorNetlist gen = core::BuildExponentiatorNetlist(4);
  rtl::BatchSimulator sim(*gen.netlist);
  const BigUInt one = ctx.ToMont(BigUInt(1));
  const BigUInt xbar = ctx.ToMont(BigUInt(7));
  const BigUInt got = RunNetlistExp(gen, sim, n, xbar, one, BigUInt(11),
                                    BigUInt(0));
  // After DONE the FSM returns to IDLE and the accumulator holds.
  for (int i = 0; i < 8; ++i) {
    sim.Tick();
    EXPECT_FALSE(sim.PeekLane(gen.done, 0));
    EXPECT_EQ(sim.PeekWide(gen.result, 0), got);
  }
}

TEST(ExponentiatorNetlist, LanesRunIndependentProblems) {
  const BigUInt n(53);
  const BitSerialMontgomery ctx(n);
  const core::ExponentiatorNetlist gen = core::BuildExponentiatorNetlist(6);
  rtl::BatchSimulator sim(*gen.netlist);
  const BigUInt one = ctx.ToMont(BigUInt(1));
  sim.Reset();
  test::SetBusAllLanes(sim, gen.one_in, one);
  test::SetBusAllLanes(sim, gen.n_in, n);
  const std::uint64_t xs[4] = {2, 7, 29, 45};
  const std::uint64_t es[4] = {5, 12, 33, 60};
  for (std::size_t lane = 0; lane < 4; ++lane) {
    test::SetBusLane(sim, gen.x_in, lane, ctx.ToMont(BigUInt(xs[lane])));
    test::SetBusLane(sim, gen.e_in, lane, BigUInt(es[lane]));
  }
  sim.SetInputAll(gen.start, true);
  sim.Tick();
  sim.SetInputAll(gen.start, false);
  const std::size_t cap = gen.l * 2 * (3 * gen.l + 16) + 64;
  // The multiply-always schedule is exponent-independent, so every lane
  // must raise DONE on the same cycle.
  bool done = false;
  for (std::size_t cycle = 0; cycle < cap && !done; ++cycle) {
    sim.Tick();
    done = sim.PeekLane(gen.done, 0);
    for (std::size_t lane = 1; lane < 4; ++lane) {
      ASSERT_EQ(sim.PeekLane(gen.done, lane), done) << "lane " << lane;
    }
  }
  ASSERT_TRUE(done) << "no lane finished";
  for (std::size_t lane = 0; lane < 4; ++lane) {
    const BigUInt got = sim.PeekWide(gen.result, lane);
    EXPECT_EQ(got, EmulateExpSchedule(ctx, ctx.ToMont(BigUInt(xs[lane])), one,
                                      BigUInt(es[lane]), gen.l))
        << "lane " << lane;
  }
}

}  // namespace
}  // namespace mont
