// Tests for the exponentiation-algorithm design space: all four algorithms
// agree with plain modular exponentiation, their operation counts follow
// the known closed forms, and the SPA trace recovery demonstrates the
// leakage difference between binary L2R and the Montgomery ladder.
#include <gtest/gtest.h>

#include "bignum/biguint.hpp"
#include "bignum/random.hpp"
#include "core/exp_algorithms.hpp"
#include "testutil.hpp"

namespace mont::core {
namespace {

using bignum::BigUInt;
using bignum::RandomBigUInt;

class AllAlgorithms : public ::testing::TestWithParam<ExpAlgorithm> {};

TEST_P(AllAlgorithms, MatchesReference) {
  auto rng = test::TestRng();
  for (const std::size_t bits : {8u, 32u, 96u, 192u}) {
    const BigUInt n = rng.OddExactBits(bits);
    const MultiExponentiator exp(n);
    for (int trial = 0; trial < 4; ++trial) {
      const BigUInt base = rng.Below(n);
      const BigUInt e = rng.ExactBits(bits);
      EXPECT_EQ(exp.ModExp(base, e, GetParam()),
                BigUInt::ModExp(base, e, n))
          << ExpAlgorithmName(GetParam()) << " bits=" << bits;
    }
  }
}

TEST_P(AllAlgorithms, EdgeExponents) {
  auto rng = test::TestRng();
  const BigUInt n = rng.OddExactBits(40);
  const MultiExponentiator exp(n);
  const BigUInt base = rng.Below(n);
  EXPECT_TRUE(exp.ModExp(base, BigUInt{0}, GetParam()).IsOne());
  EXPECT_EQ(exp.ModExp(base, BigUInt{1}, GetParam()), base);
  EXPECT_EQ(exp.ModExp(base, BigUInt{2}, GetParam()), (base * base) % n);
  EXPECT_EQ(exp.ModExp(base, BigUInt{0b1011}, GetParam()),
            BigUInt::ModExp(base, BigUInt{0b1011}, n));
}

INSTANTIATE_TEST_SUITE_P(
    Algorithms, AllAlgorithms,
    ::testing::Values(ExpAlgorithm::kLeftToRight, ExpAlgorithm::kRightToLeft,
                      ExpAlgorithm::kSlidingWindow,
                      ExpAlgorithm::kMontgomeryLadder),
    [](const auto& info) {
      switch (info.param) {
        case ExpAlgorithm::kLeftToRight: return "LeftToRight";
        case ExpAlgorithm::kRightToLeft: return "RightToLeft";
        case ExpAlgorithm::kSlidingWindow: return "SlidingWindow";
        case ExpAlgorithm::kMontgomeryLadder: return "MontgomeryLadder";
      }
      return "unknown";
    });

TEST(ExpAlgorithms, WindowBitsValidated) {
  auto rng = test::TestRng();
  const MultiExponentiator exp(rng.OddExactBits(32));
  EXPECT_THROW(exp.ModExp(BigUInt{2}, BigUInt{5}, ExpAlgorithm::kSlidingWindow,
                          1),
               std::invalid_argument);
  EXPECT_THROW(exp.ModExp(BigUInt{2}, BigUInt{5}, ExpAlgorithm::kSlidingWindow,
                          9),
               std::invalid_argument);
}

TEST(ExpAlgorithms, OperationCountsFollowClosedForms) {
  auto rng = test::TestRng();
  const std::size_t ebits = 256;
  const BigUInt n = rng.OddExactBits(ebits);
  const MultiExponentiator exp(n);
  const BigUInt base = rng.Below(n);
  const BigUInt e = rng.ExactBits(ebits);
  const std::size_t weight = e.PopCount();

  ExpTrace l2r, r2l, win, ladder;
  exp.ModExp(base, e, ExpAlgorithm::kLeftToRight, 4, &l2r);
  exp.ModExp(base, e, ExpAlgorithm::kRightToLeft, 4, &r2l);
  exp.ModExp(base, e, ExpAlgorithm::kSlidingWindow, 4, &win);
  exp.ModExp(base, e, ExpAlgorithm::kMontgomeryLadder, 4, &ladder);

  // L2R binary: t-1 squarings, weight-1 multiplications.
  EXPECT_EQ(l2r.squarings, ebits - 1);
  EXPECT_EQ(l2r.multiplications, weight - 1);
  // R2L binary: t-1 squarings of the power chain, weight multiplications.
  EXPECT_EQ(r2l.squarings, ebits - 1);
  EXPECT_EQ(r2l.multiplications, weight);
  // Ladder: exactly one square + one multiply per exponent bit.
  EXPECT_EQ(ladder.squarings, ebits);
  EXPECT_EQ(ladder.multiplications, ebits);
  // Sliding window (w=4): strictly fewer multiplications than binary, at
  // the price of 2^(w-1) table entries.
  EXPECT_LT(win.multiplications, l2r.multiplications);
  EXPECT_LE(win.squarings, ebits - 1);
  EXPECT_GE(win.precompute_mmms, (1u << 3));
  // Total work ordering for a balanced exponent: window < L2R < ladder.
  EXPECT_LT(win.TotalMmms(), l2r.TotalMmms());
  EXPECT_LT(l2r.TotalMmms(), ladder.TotalMmms());
}

TEST(ExpAlgorithms, ModeledCyclesChargePerMmm) {
  ExpTrace trace;
  trace.squarings = 10;
  trace.multiplications = 5;
  trace.precompute_mmms = 2;
  EXPECT_EQ(trace.ModeledCycles(128), 17u * (3 * 128 + 4));
}

// --- SPA: the trace of L2R binary leaks the exponent; the ladder doesn't.
TEST(ExpAlgorithms, SpaRecoversExponentFromBinaryL2R) {
  auto rng = test::TestRng();
  const BigUInt n = rng.OddExactBits(64);
  const MultiExponentiator exp(n);
  const BigUInt e = rng.ExactBits(64);
  ExpTrace trace;
  exp.ModExp(rng.Below(n), e, ExpAlgorithm::kLeftToRight, 4, &trace);
  const std::vector<bool> recovered = RecoverExponentFromTrace(trace.operations);
  // Recovered bits are e's bits below the leading one, MSB first.
  ASSERT_EQ(recovered.size(), e.BitLength() - 1);
  for (std::size_t i = 0; i < recovered.size(); ++i) {
    const std::size_t bit_index = e.BitLength() - 2 - i;
    EXPECT_EQ(recovered[i], e.Bit(bit_index)) << "position " << i;
  }
}

TEST(ExpAlgorithms, SpaLearnsNothingFromLadder) {
  auto rng = test::TestRng();
  const BigUInt n = rng.OddExactBits(64);
  const MultiExponentiator exp(n);
  const BigUInt e1 = rng.ExactBits(64);
  BigUInt e2 = e1;
  e2.SetBit(10, !e2.Bit(10));  // different key...
  ExpTrace t1, t2;
  exp.ModExp(BigUInt{3}, e1, ExpAlgorithm::kMontgomeryLadder, 4, &t1);
  exp.ModExp(BigUInt{3}, e2, ExpAlgorithm::kMontgomeryLadder, 4, &t2);
  EXPECT_EQ(t1.operations, t2.operations)
      << "...but identical operation sequences: nothing to read";
  // And the recovery yields a constant pattern independent of the key:
  // every square is followed by a multiply (except the final one).
  const auto r1 = RecoverExponentFromTrace(t1.operations);
  for (std::size_t i = 0; i + 1 < r1.size(); ++i) EXPECT_TRUE(r1[i]);
  EXPECT_FALSE(r1.back()) << "the trace's one fixed 'false' is positional, "
                             "not key-dependent";
}

}  // namespace
}  // namespace mont::core
