// rsa_hardware — the paper's target application (§4.5): RSA on the
// modular exponentiator.
//
// Generates a fresh RSA key with the library's own primality testing,
// encrypts and decrypts a message through the hardware-modelled
// exponentiator, and reports how long the private-key operation would take
// on the modelled Virtex-E at the paper's clock.
//
//   $ ./examples/rsa_hardware [modulus_bits=512]
#include <cstdio>
#include <cstdlib>

#include "bignum/random.hpp"
#include "core/netlist_gen.hpp"
#include "crypto/rsa.hpp"
#include "fpga/device_model.hpp"

int main(int argc, char** argv) {
  const std::size_t bits =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 512;
  std::printf("=== RSA-%zu on the systolic Montgomery exponentiator ===\n\n",
              bits);

  mont::bignum::RandomBigUInt rng(0x45a512u);
  std::printf("generating key (library Miller-Rabin)...\n");
  const mont::crypto::RsaKeyPair key = mont::crypto::GenerateRsaKey(bits, rng);
  std::printf("  n = 0x%s\n  e = %s\n", key.n.ToHex().c_str(),
              key.e.ToDec().c_str());

  const mont::bignum::BigUInt message = rng.Below(key.n);
  std::printf("\nmessage    = 0x%s\n", message.ToHex().c_str());
  const mont::bignum::BigUInt ciphertext = RsaPublic(key, message);
  std::printf("ciphertext = 0x%s\n", ciphertext.ToHex().c_str());

  mont::core::EngineStats stats;
  const mont::bignum::BigUInt decrypted =
      RsaPrivateOnHardwareModel(key, ciphertext, &stats);
  std::printf("decrypted  = 0x%s  -> round trip %s\n",
              decrypted.ToHex().c_str(),
              decrypted == message ? "ok" : "FAILED");
  std::printf("CRT check  = %s\n",
              RsaPrivateCrt(key, ciphertext) == decrypted ? "ok" : "FAILED");

  // What would this cost on the modelled FPGA?
  const auto gen = mont::core::BuildMmmcNetlist(bits);
  const auto fpga = mont::fpga::AnalyzeNetlist(*gen.netlist);
  const std::uint64_t total_cycles = stats.engine_cycles;
  std::printf("\nprivate-key op on the modelled V812E (-8):\n");
  std::printf("  %llu MMMs (%llu squarings + %llu multiplies + pre/post), "
              "%llu cycles\n",
              static_cast<unsigned long long>(stats.mmm_invocations),
              static_cast<unsigned long long>(stats.squarings),
              static_cast<unsigned long long>(stats.multiplications),
              static_cast<unsigned long long>(total_cycles));
  std::printf("  MMMC: %zu slices, Tp = %.3f ns -> %.3f ms per decryption\n",
              fpga.slices, fpga.clock_period_ns,
              static_cast<double>(total_cycles) * fpga.clock_period_ns * 1e-6);
  return 0;
}
