// mont_tool — a small command-line front end over the library, the kind of
// utility a downstream user reaches for first.
//
//   mont_tool modmul  <N-hex> <x-hex> <y-hex>   cycle-accurate Mont(x,y)
//   mont_tool modexp  <N-hex> <b-hex> <e-hex>   hardware-modelled b^e mod N
//   mont_tool keygen  <bits> [seed]             RSA key generation
//   mont_tool report  <l> [--dual]              FPGA mapping report
//   mont_tool gf2mul  <f-hex> <a-hex> <b-hex>   GF(2^m) Mont product
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bignum/random.hpp"
#include "core/exponentiator.hpp"
#include "core/mmmc.hpp"
#include "core/netlist_gen.hpp"
#include "core/schedule.hpp"
#include "crypto/rsa.hpp"
#include "fpga/device_model.hpp"

namespace {

using mont::bignum::BigUInt;

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  mont_tool modmul <N-hex> <x-hex> <y-hex>\n"
               "  mont_tool modexp <N-hex> <b-hex> <e-hex>\n"
               "  mont_tool keygen <bits> [seed]\n"
               "  mont_tool report <l> [--dual]\n"
               "  mont_tool gf2mul <f-hex> <a-hex> <b-hex>\n");
  return 2;
}

int ModMul(const char* n_hex, const char* x_hex, const char* y_hex) {
  const BigUInt n = BigUInt::FromHex(n_hex);
  mont::core::Mmmc circuit(n);
  std::uint64_t cycles = 0;
  const BigUInt t =
      circuit.Multiply(BigUInt::FromHex(x_hex), BigUInt::FromHex(y_hex),
                       &cycles);
  std::printf("Mont(x, y) = x*y*2^-(l+2) mod N  (l = %zu)\n", circuit.l());
  std::printf("result = 0x%s\ncycles = %llu (3l+4)\n", t.ToHex().c_str(),
              static_cast<unsigned long long>(cycles));
  return 0;
}

int ModExp(const char* n_hex, const char* b_hex, const char* e_hex) {
  const BigUInt n = BigUInt::FromHex(n_hex);
  mont::core::Exponentiator exp(n);
  mont::core::EngineStats stats;
  const BigUInt r =
      exp.ModExp(BigUInt::FromHex(b_hex), BigUInt::FromHex(e_hex), &stats);
  std::printf("b^e mod N = 0x%s\n", r.ToHex().c_str());
  std::printf("%llu squarings, %llu multiplications, %llu MMM cycles on the "
              "MMMC\n",
              static_cast<unsigned long long>(stats.squarings),
              static_cast<unsigned long long>(stats.multiplications),
              static_cast<unsigned long long>(stats.engine_cycles));
  return 0;
}

int KeyGen(const char* bits_str, const char* seed_str) {
  const std::size_t bits = static_cast<std::size_t>(std::atoi(bits_str));
  const std::uint64_t seed =
      seed_str != nullptr ? std::strtoull(seed_str, nullptr, 0) : 0x5eedull;
  mont::bignum::RandomBigUInt rng(seed);
  const mont::crypto::RsaKeyPair key = mont::crypto::GenerateRsaKey(bits, rng);
  std::printf("n = 0x%s\ne = 0x%s\nd = 0x%s\np = 0x%s\nq = 0x%s\n",
              key.n.ToHex().c_str(), key.e.ToHex().c_str(),
              key.d.ToHex().c_str(), key.p.ToHex().c_str(),
              key.q.ToHex().c_str());
  return 0;
}

int Report(const char* l_str, bool dual) {
  const std::size_t l = static_cast<std::size_t>(std::atoi(l_str));
  const auto gen = mont::core::BuildMmmcNetlist(l, dual);
  const auto stats = gen.netlist->Stats();
  const auto report = mont::fpga::AnalyzeNetlist(*gen.netlist);
  std::printf("MMMC l = %zu%s\n", l, dual ? " (dual-field)" : "");
  std::printf("gates: %zu AND, %zu OR, %zu XOR, %zu NOT, %zu MUX; FFs: %zu\n",
              stats.and_gates, stats.or_gates, stats.xor_gates,
              stats.not_gates, stats.mux_gates, stats.flip_flops);
  std::printf("Virtex-E (-8): %zu LUT4, %zu slices, Tp = %.3f ns (%.1f MHz)\n",
              report.luts, report.slices, report.clock_period_ns,
              report.fmax_mhz);
  std::printf("T_MMM = %.3f us; average 1024-bit-exponent modexp at this l "
              "= %.3f ms\n",
              (3.0 * static_cast<double>(l) + 4) * report.clock_period_ns *
                  1e-3,
              static_cast<double>(
                  mont::core::ExponentiationAverageCycles(l)) *
                  report.clock_period_ns * 1e-6);
  return 0;
}

int Gf2Mul(const char* f_hex, const char* a_hex, const char* b_hex) {
  const BigUInt f = BigUInt::FromHex(f_hex);
  mont::core::Mmmc circuit(f, mont::core::FieldMode::kGf2);
  std::uint64_t cycles = 0;
  const BigUInt t =
      circuit.Multiply(BigUInt::FromHex(a_hex), BigUInt::FromHex(b_hex),
                       &cycles);
  std::printf("GF(2^%zu) Mont(a, b) = a*b*x^-(m+2) mod f\n", circuit.l());
  std::printf("result = 0x%s\ncycles = %llu (same 3l+4 schedule)\n",
              t.ToHex().c_str(), static_cast<unsigned long long>(cycles));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "modmul" && argc == 5) return ModMul(argv[2], argv[3], argv[4]);
    if (cmd == "modexp" && argc == 5) return ModExp(argv[2], argv[3], argv[4]);
    if (cmd == "keygen" && (argc == 3 || argc == 4)) {
      return KeyGen(argv[2], argc == 4 ? argv[3] : nullptr);
    }
    if (cmd == "report" && (argc == 3 || argc == 4)) {
      return Report(argv[2], argc == 4 && std::strcmp(argv[3], "--dual") == 0);
    }
    if (cmd == "gf2mul" && argc == 5) return Gf2Mul(argv[2], argv[3], argv[4]);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
  return Usage();
}
