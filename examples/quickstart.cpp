// quickstart — the five-minute tour of the library.
//
// Builds a Montgomery Modular Multiplication Circuit for a 64-bit modulus,
// runs one multiplication clock-by-clock, checks the result against the
// software reference, and runs a modular exponentiation on the
// hardware-modelled exponentiator.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "bignum/biguint.hpp"
#include "bignum/montgomery.hpp"
#include "core/exponentiator.hpp"
#include "core/mmmc.hpp"
#include "core/schedule.hpp"

int main() {
  using mont::bignum::BigUInt;

  // An odd 64-bit modulus (a prime, as RSA/ECC would use).
  const BigUInt n = BigUInt::FromHex("ffffffffffffffc5");
  std::printf("modulus N = 0x%s (l = %zu bits)\n", n.ToHex().c_str(),
              n.BitLength());

  // --- 1. one Montgomery multiplication on the cycle-accurate circuit ---
  mont::core::Mmmc circuit(n);
  const BigUInt x = BigUInt::FromHex("123456789abcdef0");
  const BigUInt y = BigUInt::FromHex("fedcba9876543210");
  std::uint64_t cycles = 0;
  const BigUInt product = circuit.Multiply(x, y, &cycles);
  std::printf("\nMont(x, y) = x*y*R^-1 mod N  (R = 2^(l+2))\n");
  std::printf("  x       = 0x%s\n", x.ToHex().c_str());
  std::printf("  y       = 0x%s\n", y.ToHex().c_str());
  std::printf("  result  = 0x%s\n", product.ToHex().c_str());
  std::printf("  cycles  = %llu (= 3l+4 = %llu)\n",
              static_cast<unsigned long long>(cycles),
              static_cast<unsigned long long>(
                  mont::core::MultiplyCycles(n.BitLength())));

  // Cross-check against the software reference (paper Algorithm 2).
  const mont::bignum::BitSerialMontgomery reference(n);
  std::printf("  software reference agrees: %s\n",
              reference.MultiplyAlg2(x, y) == product ? "yes" : "NO");

  // --- 2. full modular exponentiation (paper Algorithm 3) ---
  mont::core::Exponentiator exponentiator(n, "mmmc");
  const BigUInt base{0xdeadbeefull};
  const BigUInt exponent{0x10001ull};  // the RSA public exponent F4
  mont::core::EngineStats stats;
  const BigUInt power = exponentiator.ModExp(base, exponent, &stats);
  std::printf("\n%llu^%llu mod N = 0x%s\n",
              static_cast<unsigned long long>(base.ToUint64()),
              static_cast<unsigned long long>(exponent.ToUint64()),
              power.ToHex().c_str());
  std::printf("  squarings=%llu multiplications=%llu, %llu cycles measured "
              "on the circuit\n",
              static_cast<unsigned long long>(stats.squarings),
              static_cast<unsigned long long>(stats.multiplications),
              static_cast<unsigned long long>(stats.engine_cycles));
  std::printf("  plain-arithmetic check: %s\n",
              BigUInt::ModExp(base, exponent, n) == power ? "ok" : "MISMATCH");
  return 0;
}
