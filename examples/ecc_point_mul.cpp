// ecc_point_mul — the paper's future-work direction (§5): an elliptic
// curve Diffie-Hellman exchange over NIST P-192 where every field
// multiplication goes through the paper's Algorithm 2.
//
//   $ ./examples/ecc_point_mul
#include <cstdio>

#include "bignum/random.hpp"
#include "core/netlist_gen.hpp"
#include "crypto/ecc.hpp"
#include "fpga/device_model.hpp"

int main() {
  using mont::bignum::BigUInt;
  using mont::crypto::AffinePoint;
  using mont::crypto::Curve;
  using mont::crypto::CurveParams;
  using mont::crypto::EccStats;

  std::printf("=== ECDH on secp192r1 over the MMMC field multiplier ===\n\n");
  const Curve curve(CurveParams::Secp192r1());
  const AffinePoint g = curve.Generator();
  std::printf("G = (0x%s,\n     0x%s)\n", g.x.ToHex().c_str(),
              g.y.ToHex().c_str());

  mont::bignum::RandomBigUInt rng(0xecd4u);
  const BigUInt alice_secret = rng.ExactBits(190);
  const BigUInt bob_secret = rng.ExactBits(190);

  EccStats alice_stats, bob_stats;
  const AffinePoint alice_pub =
      curve.ScalarMul(alice_secret, g, &alice_stats);
  const AffinePoint bob_pub = curve.ScalarMul(bob_secret, g, &bob_stats);
  std::printf("\nAlice pub: x = 0x%s (on curve: %s)\n",
              alice_pub.x.ToHex().c_str(),
              curve.IsOnCurve(alice_pub) ? "yes" : "NO");
  std::printf("Bob   pub: x = 0x%s (on curve: %s)\n",
              bob_pub.x.ToHex().c_str(),
              curve.IsOnCurve(bob_pub) ? "yes" : "NO");

  EccStats shared_stats;
  const AffinePoint shared_a =
      curve.ScalarMul(alice_secret, bob_pub, &shared_stats);
  const AffinePoint shared_b = curve.ScalarMul(bob_secret, alice_pub);
  std::printf("\nshared secret x = 0x%s\n", shared_a.x.ToHex().c_str());
  std::printf("both sides agree: %s\n", shared_a == shared_b ? "yes" : "NO");

  const std::size_t l = curve.Params().p.BitLength();
  const auto gen = mont::core::BuildMmmcNetlist(l);
  const auto fpga = mont::fpga::AnalyzeNetlist(*gen.netlist);
  const std::uint64_t cycles = shared_stats.ModeledCycles(l);
  std::printf("\none scalar multiplication: %llu field multiplications = "
              "%llu MMMC cycles\n",
              static_cast<unsigned long long>(shared_stats.field_mults +
                                              shared_stats.field_squares),
              static_cast<unsigned long long>(cycles));
  std::printf("on the modelled V812E (-8): %.3f ms (%zu slices)\n",
              static_cast<double>(cycles) * fpga.clock_period_ns * 1e-6,
              fpga.slices);
  return 0;
}
