// exp_server — the signing service front-end, end to end.
//
// One server::SigningService (multi-tenant keystore, token-bucket
// admission, priority shedding, deadlines, Bellcore-gated CRT signing
// over core::ExpService) is driven three ways:
//
//   ./exp_server             demo: two tenants — one polite, one
//                            flooding — push PKCS#1 v1.5 sign requests
//                            through the full wire codec; the run ends
//                            with the service scorecard (verified
//                            signatures, typed backpressure/shed counts,
//                            conservation of the job-level counters).
//   ./exp_server --smoke     bounded self-test for ctest: one tenant,
//                            one signature signed through the retrying
//                            client and verified against the public key,
//                            plus one oversize frame rejected at the
//                            transport with FRAME_TOO_LARGE.  Exits
//                            nonzero on any failure.
//   ./exp_server --tcp PORT  thin TCP adapter (POSIX sockets): accepts
//                            connections, splits each byte stream with
//                            the same FrameReader the in-proc transport
//                            uses, answers each frame through
//                            HandleRequestSync (including the STATS verb
//                            — the metrics registry as JSON), and closes
//                            the connection on an oversize prefix after
//                            answering FRAME_TOO_LARGE.  Serves until
//                            killed, printing a one-line ops summary
//                            (goodput, shed %, p95 latency) to stderr
//                            every few seconds.
//
// `--trace-out FILE` (any mode) attaches an obs::Tracer to the service
// and writes the captured job-lifecycle trace as chrome://tracing JSON
// on exit — load it in https://ui.perfetto.dev.
//
// The adapter is deliberately thin: framing, the oversize check and the
// status taxonomy all live in src/server/ and are identical between the
// socket path and the in-process path the tests and bench exercise.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bignum/random.hpp"
#include "crypto/pkcs1.hpp"
#include "crypto/rsa.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "server/client.hpp"
#include "server/keystore.hpp"
#include "server/signing_service.hpp"
#include "server/transport.hpp"
#include "server/wire.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define MONT_HAVE_SOCKETS 1
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

using mont::bignum::BigUInt;
namespace server = mont::server;

namespace {

server::Keystore DemoKeystore(mont::crypto::RsaKeyPair* out_key) {
  // Deterministic 512-bit demo key: smallest modulus PKCS#1/SHA-256
  // allows, so keygen and signing stay fast enough for a smoke test.
  mont::bignum::RandomBigUInt rng(0x5e12f1ceull);
  *out_key = mont::crypto::GenerateRsaKey(512, rng);

  server::Keystore keystore;
  server::TenantConfig polite;
  polite.name = "polite";
  polite.priority = 12;
  polite.burst = 64;
  keystore.AddTenant(1, polite);
  keystore.AddKey(1, 1, *out_key);

  server::TenantConfig flood;
  flood.name = "flood";
  flood.priority = 2;   // shed first under overload
  flood.burst = 8;      // tight token bucket: excess gets backpressure
  flood.refill_period_ticks = 1'000'000'000;  // 1 token/s — exhausts fast
  flood.max_in_flight = 8;
  keystore.AddTenant(2, flood);
  keystore.AddKey(2, 1, *out_key);
  return keystore;
}

int RunSmoke(mont::obs::Tracer* tracer) {
  mont::crypto::RsaKeyPair key;
  server::Keystore keystore = DemoKeystore(&key);
  server::SigningService::Options options;
  options.service.tracer = tracer;
  server::SigningService service(std::move(keystore), options);
  server::InProcTransport transport(service);
  server::SigningClient client(transport);

  // 1. One signature through the full wire path, verified against the
  //    public key.
  const std::vector<std::uint8_t> message = {'s', 'm', 'o', 'k', 'e'};
  const server::SigningClient::Outcome outcome =
      client.Sign(/*tenant_id=*/1, /*key_id=*/1, message);
  if (outcome.status != server::StatusCode::kOk) {
    std::fprintf(stderr, "smoke: sign failed with %s\n",
                 server::StatusCodeName(outcome.status));
    return 1;
  }
  const BigUInt signature = BigUInt::FromBytesBE(outcome.signature);
  if (!mont::crypto::RsaVerifyPkcs1V15(key, message, signature)) {
    std::fprintf(stderr, "smoke: signature did not verify\n");
    return 1;
  }

  // 2. An oversize length prefix must be rejected at the transport with
  //    the typed code, without ever reaching the service.
  std::vector<std::uint8_t> oversize = {0xff, 0xff, 0xff, 0x7f};
  auto rejected = transport.CallRaw(std::move(oversize)).get();
  if (!rejected.has_value() ||
      rejected->status != server::StatusCode::kFrameTooLarge) {
    std::fprintf(stderr, "smoke: oversize frame not rejected as "
                         "FRAME_TOO_LARGE\n");
    return 1;
  }
  // 3. The STATS verb answers with the metrics registry as JSON.
  server::SignRequest stats;
  stats.type = server::RequestType::kStats;
  stats.request_id = 77;
  const server::SignResponse stats_response =
      service.HandleRequestSync(server::EncodeSignRequest(stats));
  const std::string stats_json(stats_response.payload.begin(),
                               stats_response.payload.end());
  if (stats_response.status != server::StatusCode::kOk ||
      stats_response.request_id != 77 ||
      stats_json.find("\"server.ok\"") == std::string::npos) {
    std::fprintf(stderr, "smoke: STATS verb did not return metrics JSON\n");
    return 1;
  }
  service.Wait();
  std::printf("smoke OK: 1 verified signature, oversize frame rejected, "
              "STATS served\n");
  return 0;
}

int RunDemo(std::size_t requests, mont::obs::Tracer* tracer) {
  std::printf("=== exp_server: multi-tenant RSA signing service ===\n\n");
  mont::crypto::RsaKeyPair key;
  server::Keystore keystore = DemoKeystore(&key);

  server::SigningService::Options options;
  options.service.workers = 2;
  options.service.tracer = tracer;
  options.admission.queue_high_watermark = 8;
  server::SigningService service(std::move(keystore), options);
  server::InProcTransport transport(service);
  server::SigningClient polite(transport);
  server::RetryPolicy no_retry;
  no_retry.max_attempts = 1;  // the flooder takes its typed refusals
  server::SigningClient flooder(transport, no_retry);

  std::printf("tenant 1 (polite, prio 12) and tenant 2 (flood, prio 2, "
              "8-token bucket)\nsubmitting %zu requests each ...\n",
              requests);
  std::size_t polite_ok = 0, flood_ok = 0, verify_failures = 0;
  std::thread polite_thread([&] {
    for (std::size_t i = 0; i < requests; ++i) {
      std::vector<std::uint8_t> message = {'p', static_cast<std::uint8_t>(i)};
      const auto outcome = polite.Sign(1, 1, message);
      if (outcome.status != server::StatusCode::kOk) continue;
      ++polite_ok;
      if (!mont::crypto::RsaVerifyPkcs1V15(
              key, message, BigUInt::FromBytesBE(outcome.signature))) {
        ++verify_failures;
      }
    }
  });
  std::thread flood_thread([&] {
    for (std::size_t i = 0; i < requests; ++i) {
      std::vector<std::uint8_t> message = {'f', static_cast<std::uint8_t>(i)};
      const auto outcome = flooder.Sign(2, 1, message);
      if (outcome.status == server::StatusCode::kOk) ++flood_ok;
    }
  });
  polite_thread.join();
  flood_thread.join();
  service.Wait();

  const server::SigningService::Counters counters = service.Snapshot();
  const mont::core::ExpService::Counters jobs = service.ServiceSnapshot();
  std::printf("\n--- signing-service scorecard -----------------------\n");
  std::printf("  requests seen             %12llu\n",
              static_cast<unsigned long long>(counters.requests));
  std::printf("  admitted                  %12llu\n",
              static_cast<unsigned long long>(counters.admitted));
  std::printf("  signatures released (ok)  %12llu  (polite %zu, flood %zu)\n",
              static_cast<unsigned long long>(counters.ok), polite_ok,
              flood_ok);
  std::printf("  backpressure (typed)      %12llu\n",
              static_cast<unsigned long long>(counters.rejected_backpressure));
  std::printf("  shed under overload       %12llu\n",
              static_cast<unsigned long long>(counters.shed_overload));
  std::printf("  faults caught (Bellcore)  %12llu\n",
              static_cast<unsigned long long>(counters.faults_caught));
  std::printf("  bad signatures released   %12llu\n",
              static_cast<unsigned long long>(counters.bad_signatures_released));
  std::printf("  CRT half-jobs submitted   %12llu  (completed %llu, "
              "cancelled %llu)\n",
              static_cast<unsigned long long>(jobs.jobs_submitted),
              static_cast<unsigned long long>(jobs.jobs_completed),
              static_cast<unsigned long long>(jobs.deadline_exceeded));
  std::printf("  signature verify failures %12zu\n", verify_failures);
  const mont::obs::MetricsSnapshot metrics = service.StatsSnapshot();
  const auto latency = metrics.histograms.find("server.latency_ticks");
  if (latency != metrics.histograms.end() && latency->second.count > 0) {
    std::printf("  latency p50 / p95 (ms)    %9.2f / %.2f\n",
                static_cast<double>(latency->second.Percentile(0.5)) / 1e6,
                static_cast<double>(latency->second.Percentile(0.95)) / 1e6);
  }
  const std::vector<std::string> violations =
      service.registry().CheckInvariants(metrics);
  for (const std::string& violation : violations) {
    std::printf("  INVARIANT VIOLATED: %s\n", violation.c_str());
  }
  std::printf("\nEvery refusal above is a *typed* status a client can act "
              "on — nothing\nwas silently dropped, and no signature skipped "
              "the Bellcore gate.\n");

  const bool conserved =
      jobs.jobs_submitted == jobs.jobs_completed + jobs.deadline_exceeded;
  const bool healthy_served = polite_ok > 0;
  return (verify_failures == 0 && counters.bad_signatures_released == 0 &&
          conserved && healthy_served && violations.empty())
             ? 0
             : 1;
}

#ifdef MONT_HAVE_SOCKETS
void ServeConnection(server::SigningService& service, int fd) {
  server::FrameReader reader(service.MaxFrameBytes());
  std::uint8_t buffer[4096];
  for (;;) {
    const ssize_t got = ::read(fd, buffer, sizeof buffer);
    if (got <= 0) break;
    reader.Feed(std::span<const std::uint8_t>(buffer,
                                              static_cast<std::size_t>(got)));
    if (reader.OversizeError()) {
      server::SignResponse refusal;
      refusal.status = server::StatusCode::kFrameTooLarge;
      const auto frame = server::Frame(server::EncodeSignResponse(refusal));
      (void)!::write(fd, frame.data(), frame.size());
      break;  // the stream cannot be resynced — close the connection
    }
    while (auto payload = reader.Next()) {
      const server::SignResponse response =
          service.HandleRequestSync(std::move(*payload));
      const auto frame = server::Frame(server::EncodeSignResponse(response));
      if (::write(fd, frame.data(), frame.size()) < 0) break;
    }
  }
  ::close(fd);
}

// One-line ops summary every interval: goodput (signatures/s since the
// last line), refused share of all requests, and p95 admit→release
// latency — everything read from the shared metrics registry, i.e. the
// same numbers a STATS client sees.
void OpsLoop(server::SigningService& service, std::atomic<bool>& stop) {
  constexpr auto kInterval = std::chrono::seconds(2);
  std::uint64_t last_ok = 0;
  while (!stop.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(kInterval);
    const mont::obs::MetricsSnapshot metrics = service.StatsSnapshot();
    const std::uint64_t ok = metrics.CounterValue("server.ok");
    const std::uint64_t requests = metrics.CounterValue("server.requests");
    const std::uint64_t refused =
        metrics.CounterValue("server.shed_overload") +
        metrics.CounterValue("server.rejected_backpressure");
    const double goodput =
        static_cast<double>(ok - last_ok) /
        std::chrono::duration<double>(kInterval).count();
    last_ok = ok;
    const double shed_pct =
        requests > 0
            ? 100.0 * static_cast<double>(refused) /
                  static_cast<double>(requests)
            : 0.0;
    double p95_ms = 0.0;
    const auto latency = metrics.histograms.find("server.latency_ticks");
    if (latency != metrics.histograms.end() && latency->second.count > 0) {
      p95_ms = static_cast<double>(latency->second.Percentile(0.95)) / 1e6;
    }
    std::fprintf(stderr,
                 "ops: goodput %.1f sig/s | shed %.1f%% | p95 %.2f ms | "
                 "in total: %llu ok / %llu requests\n",
                 goodput, shed_pct, p95_ms,
                 static_cast<unsigned long long>(ok),
                 static_cast<unsigned long long>(requests));
  }
}

int RunTcp(std::uint16_t port, mont::obs::Tracer* tracer) {
  mont::crypto::RsaKeyPair key;
  server::SigningService::Options options;
  options.service.tracer = tracer;
  server::SigningService service(DemoKeystore(&key), options);

  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener < 0) {
    std::perror("socket");
    return 1;
  }
  const int one = 1;
  ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(listener, 16) < 0) {
    std::perror("bind/listen");
    ::close(listener);
    return 1;
  }
  std::printf("signing service listening on 127.0.0.1:%u "
              "(tenant 1 key 1; Ctrl-C to stop)\n", port);
  std::atomic<bool> ops_stop{false};
  std::thread ops_thread(OpsLoop, std::ref(service), std::ref(ops_stop));
  for (;;) {
    const int fd = ::accept(listener, nullptr, nullptr);
    if (fd < 0) break;
    std::thread(ServeConnection, std::ref(service), fd).detach();
  }
  ops_stop.store(true, std::memory_order_relaxed);
  ops_thread.join();
  ::close(listener);
  return 0;
}
#endif  // MONT_HAVE_SOCKETS

}  // namespace

int main(int argc, char** argv) {
  std::string trace_out;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else {
      args.emplace_back(argv[i]);
    }
  }
  mont::obs::Tracer tracer;
  mont::obs::Tracer* const trace_ptr = trace_out.empty() ? nullptr : &tracer;

  int rc;
  if (!args.empty() && args[0] == "--smoke") {
    rc = RunSmoke(trace_ptr);
  } else if (!args.empty() && args[0] == "--tcp") {
#ifdef MONT_HAVE_SOCKETS
    const long port =
        args.size() > 1 ? std::strtol(args[1].c_str(), nullptr, 10) : 7451;
    rc = RunTcp(static_cast<std::uint16_t>(port), trace_ptr);
#else
    std::fprintf(stderr, "--tcp requires POSIX sockets (unavailable on this "
                         "platform); use the in-proc demo instead\n");
    return 1;
#endif
  } else {
    const std::size_t requests =
        args.empty()
            ? 48
            : static_cast<std::size_t>(
                  std::strtoul(args[0].c_str(), nullptr, 10));
    rc = RunDemo(requests, trace_ptr);
  }

  if (trace_ptr != nullptr) {
    if (!tracer.WriteChromeJson(trace_out)) {
      std::fprintf(stderr, "failed to write trace to %s\n", trace_out.c_str());
      return 1;
    }
    std::fprintf(stderr,
                 "trace: %zu events (%llu dropped) -> %s "
                 "(load in ui.perfetto.dev)\n",
                 tracer.EventCount(),
                 static_cast<unsigned long long>(tracer.DroppedEvents()),
                 trace_out.c_str());
  }
  return rc;
}
