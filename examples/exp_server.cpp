// exp_server — demo loop for the batched async exponentiation service:
// a stream of mixed RSA traffic (raw modexp jobs plus CRT sign operations
// submitted as bonded dual-channel pairs) flows through one ExpService,
// and the run ends with the serving-layer scorecard: pairing ratio,
// engine-cache hit rate, and the modelled cycles saved by dual-channel
// scheduling versus sequential issue.
//
//   ./exp_server [requests]     (default 200; the ctest smoke run uses 64)
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bignum/random.hpp"
#include "core/exp_service.hpp"
#include "core/schedule.hpp"
#include "crypto/rsa.hpp"

using mont::bignum::BigUInt;
using mont::core::ExpService;

int main(int argc, char** argv) {
  const std::size_t requests =
      argc > 1 ? static_cast<std::size_t>(std::strtoul(argv[1], nullptr, 10))
               : 200;

  std::printf("=== exp_server: batched async modular exponentiation ===\n\n");

  // Two tenants with their own RSA keys, plus a pool of raw-modexp moduli
  // (as an ECDSA/DH-style side load) — all sharing one service.
  mont::bignum::RandomBigUInt rng(0x5e12f1ceull);
  const mont::crypto::RsaKeyPair tenant_a =
      mont::crypto::GenerateRsaKey(128, rng);
  const mont::crypto::RsaKeyPair tenant_b =
      mont::crypto::GenerateRsaKey(96, rng);
  std::vector<BigUInt> side_moduli;
  for (const std::size_t bits : {64u, 64u, 96u}) {
    side_moduli.push_back(rng.OddExactBits(bits));
  }

  ExpService::Options options;
  options.workers = 2;
  options.engine_cache_capacity = 8;
  ExpService service(options);

  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> modelled_cycles{0};
  const auto on_done = [&](const ExpService::Result& result) {
    ++completed;
    // Both halves of a pair report the group total; attribute half each.
    modelled_cycles += result.paired ? result.stats.engine_cycles / 2
                                     : result.stats.engine_cycles;
  };

  std::printf("submitting %zu requests (2 RSA tenants + %zu raw-modexp "
              "keys) ...\n", requests, side_moduli.size());
  std::size_t crt_ops = 0, raw_ops = 0;
  for (std::size_t r = 0; r < requests; ++r) {
    switch (r % 3) {
      case 0: {  // CRT decrypt (alternating tenants): bonded channel pair
        const mont::crypto::RsaKeyPair& key = (r % 2 == 0) ? tenant_a
                                                           : tenant_b;
        const BigUInt c = rng.Below(key.n);
        const BigUInt dp = key.d % (key.p - BigUInt{1});
        const BigUInt dq = key.d % (key.q - BigUInt{1});
        service.SubmitPair(key.p, c % key.p, dp, key.q, c % key.q, dq);
        // (A real server recombines the two futures; the demo tracks
        // completion through the service counters instead.)
        ++crt_ops;
        break;
      }
      default: {  // raw modexp traffic over the shared side moduli
        const BigUInt& n = side_moduli[r % side_moduli.size()];
        service.Submit(n, rng.Below(n), rng.Below(n), on_done);
        ++raw_ops;
        break;
      }
    }
  }
  service.Wait();

  const ExpService::Counters counters = service.Snapshot();
  const double pair_rate =
      counters.pair_issues + counters.single_issues == 0
          ? 0.0
          : static_cast<double>(2 * counters.pair_issues) /
                static_cast<double>(2 * counters.pair_issues +
                                    counters.single_issues);
  const double hit_rate =
      counters.engine_cache_hits + counters.engine_cache_misses == 0
          ? 0.0
          : static_cast<double>(counters.engine_cache_hits) /
                static_cast<double>(counters.engine_cache_hits +
                                    counters.engine_cache_misses);

  std::printf("\n--- serving-layer scorecard -------------------------\n");
  std::printf("  requests submitted        %12llu  (%zu CRT pairs, %zu raw)\n",
              static_cast<unsigned long long>(counters.jobs_submitted),
              crt_ops, raw_ops);
  std::printf("  jobs completed            %12llu\n",
              static_cast<unsigned long long>(counters.jobs_completed));
  std::printf("  callback completions      %12llu\n",
              static_cast<unsigned long long>(completed.load()));
  std::printf("  dual-channel issues       %12llu\n",
              static_cast<unsigned long long>(counters.pair_issues));
  std::printf("  single issues             %12llu\n",
              static_cast<unsigned long long>(counters.single_issues));
  std::printf("  jobs co-scheduled         %11.0f%%\n", pair_rate * 100);
  std::printf("  engine cache hit rate     %11.0f%%  (%llu hits, %llu "
              "misses, %llu evictions)\n", hit_rate * 100,
              static_cast<unsigned long long>(counters.engine_cache_hits),
              static_cast<unsigned long long>(counters.engine_cache_misses),
              static_cast<unsigned long long>(counters.engine_cache_evictions));
  std::printf("  modelled array cycles     %12llu  (callback-tracked jobs)\n",
              static_cast<unsigned long long>(modelled_cycles.load()));
  std::printf("\nEvery co-scheduled pair of MMMs costs 3l+5 cycles instead "
              "of 6l+8 —\nqueue two jobs deep and the array nearly doubles "
              "its throughput.\n");
  return counters.jobs_completed == counters.jobs_submitted ? 0 : 1;
}
