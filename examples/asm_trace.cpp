// asm_trace — watches the paper's Fig. 4 state machine at work: a complete
// Montgomery multiplication with the internal registers printed every clock
// cycle (states, counter, comparator, T register, carries, capture token).
//
//   $ ./examples/asm_trace [N=173] [x=55] [y=97]
#include <cstdio>
#include <cstdlib>

#include "bignum/montgomery.hpp"
#include "core/mmmc.hpp"

int main(int argc, char** argv) {
  using mont::bignum::BigUInt;
  const std::uint64_t nv = argc > 1 ? std::strtoull(argv[1], nullptr, 0) : 173;
  const std::uint64_t xv = argc > 2 ? std::strtoull(argv[2], nullptr, 0) : 55;
  const std::uint64_t yv = argc > 3 ? std::strtoull(argv[3], nullptr, 0) : 97;

  const BigUInt n{nv};
  mont::core::Mmmc circuit(n);
  const std::size_t l = circuit.l();
  std::printf("N = %llu (l = %zu), x = %llu, y = %llu, R = 2^%zu\n",
              static_cast<unsigned long long>(nv), l,
              static_cast<unsigned long long>(xv),
              static_cast<unsigned long long>(yv), l + 2);
  std::printf("expected Mont(x,y) mod N: %s\n\n",
              mont::bignum::BitSerialMontgomery(n)
                  .MultiplyAlg2(BigUInt{xv}, BigUInt{yv})
                  .ToDec()
                  .c_str());

  circuit.ApplyInputs(BigUInt{xv}, BigUInt{yv});
  std::printf("%5s %-5s %4s %4s | %-*s | %-*s | result\n", "cycle", "state",
              "cnt", "end", static_cast<int>(l) + 3, "T (t_l+2..t_0)",
              static_cast<int>(l), "C0 (high..low)");
  int cycle = 0;
  const auto dump = [&] {
    std::string t_bits, c0_bits;
    for (std::size_t j = circuit.TBits().size(); j-- > 0;) {
      t_bits.push_back(circuit.TBits()[j] ? '1' : '0');
    }
    for (std::size_t j = circuit.C0Bits().size(); j-- > 0;) {
      c0_bits.push_back(circuit.C0Bits()[j] ? '1' : '0');
    }
    std::printf("%5d %-5s %4llu %4d | %s | %s | %s\n", cycle,
                MmmcStateName(circuit.State()),
                static_cast<unsigned long long>(circuit.Counter()),
                circuit.CountEnd() ? 1 : 0, t_bits.c_str(), c0_bits.c_str(),
                circuit.Result().ToDec().c_str());
  };
  dump();
  while (!circuit.Done()) {
    circuit.Tick();
    ++cycle;
    dump();
  }
  std::printf("\nDONE after %d cycles (3l+4 = %zu); RESULT = %s\n", cycle,
              3 * l + 4, circuit.Result().ToDec().c_str());
  return 0;
}
