// sidechannel_demo — an end-to-end SPA attack and its countermeasure,
// on the reproduced hardware models.
//
// A 64-bit RSA-style secret exponent is used with left-to-right binary
// exponentiation; the attacker observes only the sequence of Montgomery
// operations (square vs multiply — distinguishable on a real trace by
// timing gaps between DONE pulses) and reconstructs the key.  The same
// attack against the Montgomery ladder recovers nothing.
//
//   $ ./examples/sidechannel_demo
#include <cstdio>
#include <string>

#include "bignum/random.hpp"
#include "core/exp_algorithms.hpp"

int main() {
  using mont::bignum::BigUInt;
  using mont::core::ExpAlgorithm;
  using mont::core::ExpTrace;
  using mont::core::MmmOp;

  mont::bignum::RandomBigUInt rng(0xa77ac4u);
  const BigUInt n = rng.OddExactBits(64);
  const BigUInt secret = rng.ExactBits(64);
  const mont::core::MultiExponentiator exponentiator(n);

  std::printf("modulus N = 0x%s\n", n.ToHex().c_str());
  std::printf("secret  d = 0x%s  (the attacker wants this)\n\n",
              secret.ToHex().c_str());

  const auto show = [](const ExpTrace& trace, std::size_t limit) {
    std::string ops;
    for (std::size_t i = 0; i < trace.operations.size() && i < limit; ++i) {
      ops.push_back(trace.operations[i] == MmmOp::kSquare ? 'S' : 'M');
    }
    if (trace.operations.size() > limit) ops += "...";
    return ops;
  };

  // --- the leaky way -------------------------------------------------------
  ExpTrace leaky;
  exponentiator.ModExp(BigUInt{2}, secret, ExpAlgorithm::kLeftToRight, 4,
                       &leaky);
  std::printf("left-to-right binary emits: %s\n", show(leaky, 48).c_str());
  const auto recovered = RecoverExponentFromTrace(leaky.operations);
  BigUInt guess{1};  // the implicit leading 1-bit
  for (const bool bit : recovered) {
    guess <<= 1;
    if (bit) guess.SetBit(0, true);
  }
  std::printf("SPA-recovered exponent:     0x%s\n", guess.ToHex().c_str());
  std::printf("full key recovered: %s\n\n",
              guess == secret ? "YES — one trace was enough" : "no");

  // --- the constant-sequence way -------------------------------------------
  ExpTrace guarded;
  exponentiator.ModExp(BigUInt{2}, secret, ExpAlgorithm::kMontgomeryLadder, 4,
                       &guarded);
  std::printf("Montgomery ladder emits:    %s\n", show(guarded, 48).c_str());
  std::printf("every bit costs exactly one M and one S — the sequence is "
              "independent of d.\n");
  std::printf("cost of the countermeasure: %llu vs %llu MMMs (%.0f%% more)\n",
              static_cast<unsigned long long>(guarded.TotalMmms()),
              static_cast<unsigned long long>(leaky.TotalMmms()),
              100.0 * (static_cast<double>(guarded.TotalMmms()) /
                           static_cast<double>(leaky.TotalMmms()) -
                       1.0));
  std::printf("\n(Both traces come from the same Algorithm-2 multiplier; the "
              "MMMC itself is constant-\ntime per §5 of the paper — the leak "
              "lives one level up, in the operation schedule.)\n");
  return 0;
}
