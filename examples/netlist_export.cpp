// netlist_export — generates the complete gate-level MMMC for a chosen
// operand length, prints its composition and FPGA mapping report, and
// writes synthesizable Verilog next to the binary — closing the loop with
// the paper's original FPGA flow.
//
//   $ ./examples/netlist_export [l=16] [out.v]
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "analysis/lint.hpp"
#include "analysis/taint.hpp"
#include "core/netlist_gen.hpp"
#include "fpga/device_model.hpp"
#include "rtl/testbench.hpp"
#include "rtl/timing.hpp"
#include "rtl/verilog.hpp"

int main(int argc, char** argv) {
  const std::size_t l =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 16;
  const std::string path = argc > 2 ? argv[2] : "mmmc" + std::to_string(l) + ".v";

  const auto gen = mont::core::BuildMmmcNetlist(l);
  const auto stats = gen.netlist->Stats();
  std::printf("=== MMMC netlist for l = %zu ===\n", l);
  std::printf("gates: %zu AND, %zu OR, %zu XOR, %zu NOT, %zu MUX; flip-flops: "
              "%zu\n",
              stats.and_gates, stats.or_gates, stats.xor_gates,
              stats.not_gates, stats.mux_gates, stats.flip_flops);

  const mont::rtl::TimingAnalyzer sta(*gen.netlist,
                                      mont::rtl::DelayModel::Unit());
  const auto path_report = sta.CriticalPath();
  std::printf("gate-level critical path: %zu levels\n",
              path_report.logic_levels);

  const auto fpga = mont::fpga::AnalyzeNetlist(*gen.netlist);
  std::printf("Virtex-E (-8) mapping: %zu LUT4, %zu FF, %zu slices, depth %zu "
              "LUTs, Tp = %.3f ns (%.1f MHz)\n",
              fpga.luts, fpga.flip_flops, fpga.slices, fpga.lut_depth,
              fpga.clock_period_ns, fpga.fmax_mhz);

  // Static-analysis summary of the exported artifact: structural lint
  // (exported Verilog should never carry a hard finding) and the
  // secret-taint profile of the operand cone.
  const auto lint = mont::analysis::RunLint(*gen.netlist);
  std::printf("lint: %zu finding(s), %zu waived, max depth %zu, max fanout "
              "%zu\n",
              lint.findings.size(), lint.waived.size(), lint.max_depth,
              lint.max_fanout);
  const auto taint = mont::analysis::AnalyzeTaint(*gen.netlist);
  using mont::analysis::TaintLabel;
  const auto logic = [&](TaintLabel label) {
    return taint.logic_counts[static_cast<std::size_t>(label)];
  };
  std::printf("taint: %zu clean / %zu secret logic nets (control cone is "
              "operand-independent)\n",
              logic(TaintLabel::kClean), logic(TaintLabel::kSecret));

  const std::string verilog =
      mont::rtl::ExportVerilog(*gen.netlist, "mmmc" + std::to_string(l));
  std::ofstream out(path);
  out << verilog;
  out.close();
  std::printf("\nwrote %zu bytes of Verilog to %s\n", verilog.size(),
              path.c_str());
  std::printf("(ports: clk, start, x[0..%zu], y[0..%zu], n[0..%zu] -> done, "
              "result[0..%zu])\n",
              l, l, l - 1, l);

  // Self-checking testbench: one multiplication (x = 5, y = 9, N = the
  // largest odd l-bit value), expectations recorded from the verified
  // simulator.
  std::vector<std::vector<std::pair<mont::rtl::NetId, bool>>> stimulus;
  const std::uint64_t n_val = (l < 63 ? (1ull << l) : 0) - 1;  // odd, l bits
  std::vector<std::pair<mont::rtl::NetId, bool>> first{{gen.start, true}};
  for (std::size_t b = 0; b <= l; ++b) {
    first.emplace_back(gen.x_in[b], (5ull >> b) & 1);
    first.emplace_back(gen.y_in[b], (9ull >> b) & 1);
  }
  for (std::size_t b = 0; b < l; ++b) {
    first.emplace_back(gen.n_in[b], (n_val >> b) & 1);
  }
  stimulus.push_back(first);
  for (std::size_t k = 0; k < 3 * l + 5; ++k) {
    stimulus.push_back({{gen.start, false}});
  }
  const auto vectors = mont::rtl::RecordVectors(*gen.netlist, stimulus);
  const std::string tb = mont::rtl::ExportTestbench(
      *gen.netlist, "mmmc" + std::to_string(l), vectors);
  const std::string tb_path = path + ".tb.v";
  std::ofstream tb_out(tb_path);
  tb_out << tb;
  std::printf("wrote %zu bytes of self-checking testbench to %s\n", tb.size(),
              tb_path.c_str());
  return 0;
}
